package store

// The content-addressed object store: large immutable blobs (canonical
// snapshot encodings) filed under caller-supplied keys — in practice
// the snapshot.Fingerprint hex of the bytes themselves. Objects are
// written atomically (tmp file, fsync, rename, dir fsync), carry their
// own CRC32C so bit rot is detected on read, and are idempotent to Put:
// a key that already exists is never rewritten.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// objMagic opens every object file; the digit is the format version.
const objMagic = "COB1"

// objHeaderSize is magic (4) + CRC32C over the payload (4, LE).
const objHeaderSize = 8

// SnapStore is the object half of a Store. Safe for concurrent use:
// every operation is a whole-file read or an atomic rename.
type SnapStore struct {
	dir  string
	sync bool
}

// openSnapStore roots an object store at dir.
func openSnapStore(dir string, sync bool) (*SnapStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &SnapStore{dir: dir, sync: sync}, nil
}

// checkKey rejects keys that could escape the store directory or
// collide with its tmp files. Fingerprint hex always passes.
func checkKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("store: object key length %d out of range [1, 128]", len(key))
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
		default:
			return fmt.Errorf("store: object key %q holds disallowed character %q", key, r)
		}
	}
	if strings.HasPrefix(key, ".") {
		return fmt.Errorf("store: object key %q may not start with a dot", key)
	}
	return nil
}

// objPath shards objects into two-character fan-out directories.
func (s *SnapStore) objPath(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(s.dir, shard, key)
}

// Put stores data under key, atomically and idempotently.
func (s *SnapStore) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	path := s.objPath(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-obj-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	var hdr [objHeaderSize]byte
	copy(hdr[:4], objMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], crcBytes(data))
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(data)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("store: write object: %w", err)
	}
	if s.sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.sync {
		return syncDir(dir)
	}
	return nil
}

// crcBytes is the object-payload checksum.
func crcBytes(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// Get reads the object under key. ok is false when the key is absent;
// a present object that fails its CRC or framing is an error.
func (s *SnapStore) Get(key string) (data []byte, ok bool, err error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	raw, err := os.ReadFile(s.objPath(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	if len(raw) < objHeaderSize || string(raw[:4]) != objMagic {
		return nil, false, fmt.Errorf("store: object %s: bad header", key)
	}
	payload := raw[objHeaderSize:]
	if crcBytes(payload) != binary.LittleEndian.Uint32(raw[4:8]) {
		return nil, false, fmt.Errorf("store: object %s: CRC mismatch", key)
	}
	return payload, true, nil
}

// Has reports whether key names a stored object (without verifying it).
func (s *SnapStore) Has(key string) bool {
	if checkKey(key) != nil {
		return false
	}
	_, err := os.Stat(s.objPath(key))
	return err == nil
}

// Delete removes the object under key; absent keys are a no-op.
func (s *SnapStore) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if err := os.Remove(s.objPath(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Keys lists every stored object key, sorted.
func (s *SnapStore) Keys() ([]string, error) {
	var out []string
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		ents, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), ".") {
				continue
			}
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
