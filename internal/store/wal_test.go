package store

// WAL mechanics outside the crash matrix: append/replay round trips,
// rotation, sync policies, compaction boundaries, the journal, and the
// KV payload codec.

import (
	"bytes"
	"fmt"
	"testing"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := matrixRecords()
	for i, r := range want {
		idx, err := l.Append(r.Type, r.Data)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if idx != uint64(i) {
			t.Fatalf("append %d landed at index %d", i, idx)
		}
	}
	if l.NextIndex() != uint64(len(want)) {
		t.Fatalf("next index %d, want %d", l.NextIndex(), len(want))
	}
	var got []Record
	if err := l.Replay(func(r Record) error {
		got = append(got, Record{Index: r.Index, Type: r.Type, Data: append([]byte(nil), r.Data...)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	checkPrefix(t, got, want, len(want))
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Reopen: SyncNever still closes durable via Close's fsync.
	l2, got2 := recoverAll(t, dir)
	defer l2.Close()
	checkPrefix(t, got2, want, len(want))
}

func TestRotationKeepsIndicesContiguous(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	const n = 50
	for i := 0; i < n; i++ {
		idx, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 20))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if idx != uint64(i) {
			t.Fatalf("index %d, want %d", idx, i)
		}
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("no rotation happened: %d segments", l.SegmentCount())
	}
	next := uint64(0)
	if err := l.Replay(func(r Record) error {
		if r.Index != next {
			return fmt.Errorf("replay index %d, want %d", r.Index, next)
		}
		next++
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if next != n {
		t.Fatalf("replayed %d records, want %d", next, n)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	// A record larger than a segment still appends (segments always
	// accept at least one record)...
	if _, err := l.Append(1, make([]byte, 5<<20)); err != nil {
		t.Fatalf("large append: %v", err)
	}
	// ...but one past MaxRecordBytes is refused outright.
	if _, err := l.Append(1, make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatalf("append past MaxRecordBytes succeeded")
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncInterval, SyncEvery: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, []byte("interval")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, got := recoverAll(t, dir)
	defer l2.Close()
	if len(got) != 10 {
		t.Fatalf("recovered %d records, want 10", len(got))
	}
}

func TestClosedLogRefusesWork(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := l.Append(1, []byte("x")); err == nil {
		t.Fatalf("append on closed log succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatalf("sync on closed log succeeded")
	}
	if _, err := l.Rotate(); err == nil {
		t.Fatalf("rotate on closed log succeeded")
	}
}

func TestCompactNeverRemovesActive(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, []byte("live")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	removed, err := l.Compact(l.NextIndex())
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if removed != 0 {
		t.Fatalf("compaction removed the active segment")
	}
	var n int
	l.Replay(func(Record) error { n++; return nil })
	if n != 5 {
		t.Fatalf("records lost to compaction: %d of 5", n)
	}
}

func TestStoreOpenAndJournal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	j := st.Journal(9, "search-a")
	other := st.Journal(9, "search-b")
	if _, ok, err := j.Latest(); err != nil || ok {
		t.Fatalf("latest on empty journal: ok=%v err=%v", ok, err)
	}
	for lvl := 1; lvl <= 3; lvl++ {
		if err := j.SaveProgress(lvl, []byte(fmt.Sprintf("ckpt-%d", lvl))); err != nil {
			t.Fatalf("save: %v", err)
		}
	}
	if err := other.SaveProgress(1, []byte("other")); err != nil {
		t.Fatalf("save other: %v", err)
	}
	cp, ok, err := j.Latest()
	if err != nil || !ok || string(cp) != "ckpt-3" {
		t.Fatalf("latest = %q ok=%v err=%v, want ckpt-3", cp, ok, err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The journal survives reopening the store.
	st2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	cp, ok, err = st2.Journal(9, "search-a").Latest()
	if err != nil || !ok || string(cp) != "ckpt-3" {
		t.Fatalf("latest after reopen = %q ok=%v err=%v", cp, ok, err)
	}
}

func TestOpenStoreRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatalf("open with empty dir succeeded")
	}
}

func TestKVCodec(t *testing.T) {
	cases := []struct {
		key   string
		value []byte
	}{
		{"", nil},
		{"k", []byte("v")},
		{"plan|fig10|7", bytes.Repeat([]byte{0x00, 0xff}, 300)},
	}
	for _, c := range cases {
		k, v, err := DecodeKV(EncodeKV(c.key, c.value))
		if err != nil {
			t.Fatalf("decode(%q): %v", c.key, err)
		}
		if k != c.key || !bytes.Equal(v, c.value) {
			t.Fatalf("kv round trip (%q, %d bytes) -> (%q, %d bytes)", c.key, len(c.value), k, len(v))
		}
	}
	if _, _, err := DecodeKV([]byte{5}); err == nil {
		t.Fatalf("short kv payload decoded")
	}
	if _, _, err := DecodeKV([]byte{10, 0, 'a'}); err == nil {
		t.Fatalf("kv payload with overlong key length decoded")
	}
}
