// Package store is centralium's durable state plane: an append-only,
// CRC32C-framed, segment-rotated write-ahead log plus a content-addressed
// object store for encoded fabric snapshots.
//
// The WAL holds small, frequently-updated control-plane state — plan-search
// checkpoints, memoized responses, scenario-base registrations — as typed
// records whose latest instance wins on replay. The object store holds the
// large immutable blobs those records point at (canonical snapshot
// encodings, keyed by their snapshot.Fingerprint), written atomically via
// tmp-file + rename so a crash never leaves a half object under a live key.
//
// Durability is fsync-policied (SyncAlways, SyncInterval, SyncNever) and
// recovery is crash-safe by construction: on Open every record's CRC32C is
// verified, a torn or corrupt tail in the newest segment is truncated —
// never panicked on, never silently replayed — and corruption anywhere
// before the tail (bit rot in supposedly-durable data) is a hard error
// instead of a quiet skip. The crash-recovery conformance suite in this
// package cuts a reference log at every record boundary, at every byte
// inside the tail record, and under injected bit flips, and requires
// recovery to yield exactly the durable prefix every time.
//
// Compaction is checkpoint-style: callers rotate to a fresh segment,
// re-append their live state, and Compact away every whole segment that
// precedes it (internal/server drives this once the log exceeds its
// segment budget).
package store
