package store

// Offline segment inspection, used by crash-recovery conformance suites
// (and debugging tools) to enumerate the exact byte offsets where a kill
// can land between durable records.

import (
	"fmt"
	"os"
)

// RecordBoundaries parses one segment file and returns every
// crash-consistent byte offset in it: the offset just past the header
// (zero records durable) and the offset just past each whole record.
// Truncating a copy of the file at any returned offset simulates a kill
// with exactly that many records on disk. The segment's tail is scanned
// leniently — a torn or corrupt tail ends the boundary list the same way
// recovery would truncate it.
func RecordBoundaries(path string) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < segHeaderSize || string(data[:4]) != segMagic {
		return nil, fmt.Errorf("store: %s is not a segment file", path)
	}
	boundaries := []int64{segHeaderSize}
	off := segHeaderSize
	for off < len(data) {
		_, _, n, err := parseFrame(data[off:])
		if err != nil {
			break
		}
		off += n
		boundaries = append(boundaries, int64(off))
	}
	return boundaries, nil
}
