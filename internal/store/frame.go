package store

// The WAL record frame: a fixed header of payload length, CRC32C, and
// record type, followed by the payload.
//
//	offset  size  field
//	0       4     payload length (uint32 LE)
//	4       4     CRC32C over type byte + payload (uint32 LE)
//	8       1     record type
//	9       n     payload
//
// The CRC covers the type and payload; a flipped length byte mis-slices
// the payload and fails the CRC with the same probability as any other
// corruption, so recovery needs no separate length integrity. Decoding
// arbitrary bytes never panics and never yields a record whose CRC does
// not verify — FuzzWALRecord holds both properties.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// frameHeaderSize is the fixed per-record overhead.
	frameHeaderSize = 9
	// MaxRecordBytes bounds one record's payload; a decoded length past
	// it is corruption, not a huge allocation.
	MaxRecordBytes = 16 << 20
)

// castagnoli is the CRC32C polynomial table (the iSCSI/ext4 one).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errShortFrame marks a frame cut off mid-record: a torn write when it
// is the tail of the newest segment, hard corruption anywhere else.
var errShortFrame = errors.New("store: truncated record frame")

// errBadFrame marks a frame whose CRC or length field does not verify.
var errBadFrame = errors.New("store: corrupt record frame")

// frameCRC computes the checksum a frame carries for (typ, payload).
func frameCRC(typ uint8, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, []byte{typ})
	return crc32.Update(crc, castagnoli, payload)
}

// appendFrame renders one record frame onto dst.
func appendFrame(dst []byte, typ uint8, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], frameCRC(typ, payload))
	hdr[8] = typ
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseFrame decodes the frame at the start of buf. It returns the
// record type, the payload (aliasing buf), and the total frame size
// consumed. A buffer ending mid-frame returns errShortFrame; a frame
// whose length is absurd or whose CRC fails returns errBadFrame.
func parseFrame(buf []byte) (typ uint8, payload []byte, n int, err error) {
	if len(buf) < frameHeaderSize {
		return 0, nil, 0, errShortFrame
	}
	size := binary.LittleEndian.Uint32(buf[0:4])
	if size > MaxRecordBytes {
		return 0, nil, 0, fmt.Errorf("%w: length %d exceeds %d", errBadFrame, size, MaxRecordBytes)
	}
	want := binary.LittleEndian.Uint32(buf[4:8])
	typ = buf[8]
	end := frameHeaderSize + int(size)
	if len(buf) < end {
		return 0, nil, 0, errShortFrame
	}
	payload = buf[frameHeaderSize:end]
	if frameCRC(typ, payload) != want {
		return 0, nil, 0, fmt.Errorf("%w: CRC mismatch", errBadFrame)
	}
	return typ, payload, end, nil
}

// EncodeKV renders the (key, value) payload convention layered on WAL
// records by the server and the plan journal: a 16-bit key length, the
// key, then the value.
func EncodeKV(key string, value []byte) []byte {
	if len(key) > 0xffff {
		key = key[:0xffff]
	}
	out := make([]byte, 0, 2+len(key)+len(value))
	out = append(out, byte(len(key)), byte(len(key)>>8))
	out = append(out, key...)
	return append(out, value...)
}

// DecodeKV splits a payload written by EncodeKV. The value aliases the
// input.
func DecodeKV(payload []byte) (key string, value []byte, err error) {
	if len(payload) < 2 {
		return "", nil, fmt.Errorf("store: kv payload too short (%d bytes)", len(payload))
	}
	n := int(payload[0]) | int(payload[1])<<8
	if len(payload) < 2+n {
		return "", nil, fmt.Errorf("store: kv key length %d exceeds payload", n)
	}
	return string(payload[2 : 2+n]), payload[2+n:], nil
}
