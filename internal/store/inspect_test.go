package store

// RecordBoundaries is the crash matrix's enumeration primitive: every
// offset it returns must be exactly a state recovery can reach, and the
// count of records durable at boundary i must be i.

import (
	"os"
	"path/filepath"
	"testing"
)

// segPath returns the single segment of a freshly-written log.
func segPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment in %s, got %v (%v)", dir, segs, err)
	}
	return segs[0]
}

func TestRecordBoundariesEnumeratesEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const records = 5
	for i := 0; i < records; i++ {
		if _, err := l.Append(7, []byte{byte(i), byte(i), byte(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	seg := segPath(t, dir)

	bounds, err := RecordBoundaries(seg)
	if err != nil {
		t.Fatalf("boundaries: %v", err)
	}
	if len(bounds) != records+1 {
		t.Fatalf("got %d boundaries for %d records, want %d", len(bounds), records, records+1)
	}
	if bounds[0] != segHeaderSize {
		t.Fatalf("first boundary %d, want the segment header size %d", bounds[0], segHeaderSize)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if bounds[len(bounds)-1] != int64(len(data)) {
		t.Fatalf("last boundary %d, want file size %d", bounds[len(bounds)-1], len(data))
	}

	// Truncating at boundary i must recover exactly i records.
	for i, b := range bounds {
		cut := filepath.Join(t.TempDir(), "wal")
		if err := os.MkdirAll(cut, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cut, filepath.Base(seg)), data[:b], 0o644); err != nil {
			t.Fatal(err)
		}
		rl, err := OpenLog(cut, Options{})
		if err != nil {
			t.Fatalf("boundary %d: reopen: %v", i, err)
		}
		n := 0
		if err := rl.Replay(func(Record) error { n++; return nil }); err != nil {
			t.Fatalf("boundary %d: replay: %v", i, err)
		}
		rl.Close()
		if n != i {
			t.Fatalf("boundary %d recovered %d records", i, n)
		}
	}
}

func TestRecordBoundariesStopAtTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := l.Append(1, []byte("whole")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	seg := segPath(t, dir)
	whole, err := RecordBoundaries(seg)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0, 0, 0, 0xde}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	torn, err := RecordBoundaries(seg)
	if err != nil {
		t.Fatalf("torn tail made boundaries fail: %v", err)
	}
	if len(torn) != len(whole) {
		t.Fatalf("torn tail changed the boundary count: %d vs %d", len(torn), len(whole))
	}
}

func TestRecordBoundariesRejectsNonSegments(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "not-a-segment")
	if err := os.WriteFile(bad, []byte("plain text, no magic"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RecordBoundaries(bad); err == nil {
		t.Fatal("non-segment file accepted")
	}
	if _, err := RecordBoundaries(filepath.Join(dir, "absent")); err == nil {
		t.Fatal("missing file accepted")
	}
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("CW"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RecordBoundaries(short); err == nil {
		t.Fatal("short file accepted")
	}
}
