package store

// The crash-recovery conformance matrix. A reference log is written
// under SyncAlways, where every returned Append is durable; a kill at
// an arbitrary instant therefore leaves exactly some byte-prefix of
// the reference file on disk. The matrix replays recovery from every
// record boundary (clean kills), from every byte offset inside the
// tail record (torn writes), and from single-bit flips (media
// corruption), and requires: recovery never panics, never errors on a
// crash-consistent image, never yields a record that was not durably
// appended, yields every record before the damage, and leaves the log
// appendable with contiguous indices.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// matrixRecords is the reference workload: varied sizes, an empty
// payload, binary content, repeated types.
func matrixRecords() []Record {
	payloads := [][]byte{
		[]byte("alpha"),
		{},
		bytes.Repeat([]byte{0xa5, 0x00, 0xff}, 40),
		[]byte("delta-record-with-a-longer-payload-line"),
		{0x00},
		bytes.Repeat([]byte("wal"), 100),
		[]byte("tail"),
	}
	out := make([]Record, len(payloads))
	for i, p := range payloads {
		out[i] = Record{Index: uint64(i), Type: uint8(i%3 + 1), Data: p}
	}
	return out
}

// writeReference builds the reference log in its own directory and
// returns the single segment's file bytes plus the byte offset of
// every record boundary (boundaries[k] = file length after k records).
func writeReference(t *testing.T, recs []Record) (segBytes []byte, boundaries []int) {
	t.Helper()
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncAlways, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatalf("open reference log: %v", err)
	}
	for _, r := range recs {
		if _, err := l.Append(r.Type, r.Data); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("reference log segments: %v (%d)", err, len(segs))
	}
	segBytes, err = os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatalf("read reference segment: %v", err)
	}
	boundaries = []int{segHeaderSize}
	off := segHeaderSize
	for range recs {
		_, _, n, err := parseFrame(segBytes[off:])
		if err != nil {
			t.Fatalf("reference frame scan: %v", err)
		}
		off += n
		boundaries = append(boundaries, off)
	}
	if off != len(segBytes) {
		t.Fatalf("reference scan consumed %d of %d bytes", off, len(segBytes))
	}
	return segBytes, boundaries
}

// plantImage writes one crash image: a log directory whose only
// segment holds the given bytes.
func plantImage(t *testing.T, img []byte) string {
	t.Helper()
	dir := t.TempDir()
	name := filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", 0))
	if err := os.WriteFile(name, img, 0o644); err != nil {
		t.Fatalf("plant image: %v", err)
	}
	return dir
}

// recoverAll opens a log directory and returns its replayed records.
func recoverAll(t *testing.T, dir string) (*Log, []Record) {
	t.Helper()
	l, err := OpenLog(dir, Options{Sync: SyncAlways, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	var got []Record
	if err := l.Replay(func(r Record) error {
		got = append(got, Record{Index: r.Index, Type: r.Type, Data: append([]byte(nil), r.Data...)})
		return nil
	}); err != nil {
		t.Fatalf("replay after recovery: %v", err)
	}
	return l, got
}

// checkPrefix asserts the recovered records are exactly recs[:n].
func checkPrefix(t *testing.T, got, want []Record, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("recovered %d records, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[i].Index != want[i].Index || got[i].Type != want[i].Type || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d diverged after recovery: %+v want %+v", i, got[i], want[i])
		}
	}
}

// checkAppendable proves recovery left a live log: one more append
// lands at the contiguous next index and survives another recovery.
func checkAppendable(t *testing.T, l *Log, dir string, prefix []Record) {
	t.Helper()
	sentinel := []byte("post-recovery-append")
	idx, err := l.Append(0x7f, sentinel)
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if idx != uint64(len(prefix)) {
		t.Fatalf("post-recovery append landed at index %d, want %d", idx, len(prefix))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, got := recoverAll(t, dir)
	defer l2.Close()
	checkPrefix(t, got[:len(got)-1], prefix, len(prefix))
	lastIdx := len(got) - 1
	if got[lastIdx].Type != 0x7f || !bytes.Equal(got[lastIdx].Data, sentinel) {
		t.Fatalf("sentinel record did not survive the second recovery: %+v", got[lastIdx])
	}
}

// TestCrashAtEveryRecordBoundary is the clean-kill half of the matrix:
// the on-disk image cut at each record boundary recovers to exactly
// that prefix and stays appendable.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	recs := matrixRecords()
	segBytes, boundaries := writeReference(t, recs)
	for k, cut := range boundaries {
		t.Run(fmt.Sprintf("records=%d", k), func(t *testing.T) {
			dir := plantImage(t, segBytes[:cut])
			l, got := recoverAll(t, dir)
			checkPrefix(t, got, recs, k)
			checkAppendable(t, l, dir, recs[:k])
		})
	}
}

// TestCrashTornWriteEveryOffset is the torn-write half: the image cut
// at every byte offset strictly inside a record frame recovers to the
// records wholly before the cut — the torn frame is truncated away,
// never partially replayed.
func TestCrashTornWriteEveryOffset(t *testing.T) {
	recs := matrixRecords()
	segBytes, boundaries := writeReference(t, recs)
	for k := 0; k < len(recs); k++ {
		lo, hi := boundaries[k], boundaries[k+1]
		for cut := lo + 1; cut < hi; cut++ {
			dir := plantImage(t, segBytes[:cut])
			l, got := recoverAll(t, dir)
			checkPrefix(t, got, recs, k)
			if l.TruncatedBytes() != cut-lo {
				t.Fatalf("cut at %d: recovery reported %d truncated bytes, want %d", cut, l.TruncatedBytes(), cut-lo)
			}
			l.Close()
		}
	}
	// One torn image end-to-end with the appendability check (cheaper
	// than running it at every offset).
	cut := boundaries[len(recs)-1] + (boundaries[len(recs)]-boundaries[len(recs)-1])/2
	dir := plantImage(t, segBytes[:cut])
	l, got := recoverAll(t, dir)
	checkPrefix(t, got, recs, len(recs)-1)
	checkAppendable(t, l, dir, recs[:len(recs)-1])
}

// TestCrashBitFlipTailRecord flips every bit of the final record's
// frame in turn; recovery must drop the damaged tail (and anything
// after it), keep everything before it, and never panic.
func TestCrashBitFlipTailRecord(t *testing.T) {
	recs := matrixRecords()
	segBytes, boundaries := writeReference(t, recs)
	lo, hi := boundaries[len(recs)-1], boundaries[len(recs)]
	for off := lo; off < hi; off++ {
		for bit := 0; bit < 8; bit++ {
			img := append([]byte(nil), segBytes...)
			img[off] ^= 1 << bit
			dir := plantImage(t, img)
			l, got := recoverAll(t, dir)
			checkPrefix(t, got, recs, len(recs)-1)
			l.Close()
		}
	}
}

// TestCrashBitFlipMidSegment flips a byte in an interior record of the
// newest segment: the scan truncates at the first damaged record, so
// the intact records before it survive and the valid-but-unreachable
// suffix is dropped rather than silently replayed past a CRC failure.
func TestCrashBitFlipMidSegment(t *testing.T) {
	recs := matrixRecords()
	segBytes, boundaries := writeReference(t, recs)
	k := 3 // damage record 3 of 7
	img := append([]byte(nil), segBytes...)
	img[boundaries[k]+frameHeaderSize] ^= 0x10
	dir := plantImage(t, img)
	l, got := recoverAll(t, dir)
	defer l.Close()
	checkPrefix(t, got, recs, k)
	if l.TruncatedBytes() != len(segBytes)-boundaries[k] {
		t.Fatalf("truncated %d bytes, want %d", l.TruncatedBytes(), len(segBytes)-boundaries[k])
	}
}

// TestCorruptClosedSegmentRefusesOpen: damage in a segment before the
// newest one is bit rot in data the log already called durable.
// Recovery must fail loudly with ErrCorrupt, not truncate or skip.
func TestCorruptClosedSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 12; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 24)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("workload produced %d segments, want >= 3", l.SegmentCount())
	}
	l.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	first, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	first[segHeaderSize+frameHeaderSize] ^= 0x01
	if err := os.WriteFile(segs[0].path, first, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := OpenLog(dir, Options{Sync: SyncAlways}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over interior corruption: err=%v, want ErrCorrupt", err)
	}
}

// TestCrashDuringRotation covers the kill windows around segment
// rotation: a newest segment with no header, a partial header, or a
// header and no records must be discarded or accepted cleanly, with
// the indices continuing from the previous segment.
func TestCrashDuringRotation(t *testing.T) {
	build := func(t *testing.T) (string, int) {
		dir := t.TempDir()
		l, err := OpenLog(dir, Options{Sync: SyncAlways, SegmentBytes: 64})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		n := 0
		for l.SegmentCount() < 2 {
			if _, err := l.Append(2, bytes.Repeat([]byte{0xee}, 20)); err != nil {
				t.Fatalf("append: %v", err)
			}
			n++
		}
		l.Close()
		return dir, n
	}
	cases := []struct {
		name string
		tail []byte // bytes the torn newest segment holds
	}{
		{"empty-file", nil},
		{"partial-header", []byte(segMagic[:2])},
		{"bad-magic", []byte("XXXX\x00\x00\x00\x00\x00\x00\x00\x00")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, n := build(t)
			segs, err := listSegments(dir)
			if err != nil {
				t.Fatalf("list: %v", err)
			}
			// Replace the newest segment with the torn image. The records
			// it held were appended after the simulated kill, so the
			// durable count drops to what the older segments hold.
			newest := segs[len(segs)-1]
			durable := int(newest.base)
			if err := os.WriteFile(newest.path, tc.tail, 0o644); err != nil {
				t.Fatalf("write torn segment: %v", err)
			}
			l, got := recoverAll(t, dir)
			if len(got) != durable {
				t.Fatalf("recovered %d records, want %d", len(got), durable)
			}
			_ = n
			idx, err := l.Append(3, []byte("continue"))
			if err != nil {
				t.Fatalf("append after rotation crash: %v", err)
			}
			if idx != uint64(durable) {
				t.Fatalf("append index %d, want %d", idx, durable)
			}
			l.Close()
		})
	}
}

// TestCompactionSurvivesRecovery: rotate + rewrite + compact, then
// recover — replay sees the rewritten state with original indices gone
// and the segment files actually removed.
func TestCompactionSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncAlways, SegmentBytes: 96})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 16; i++ {
		if _, err := l.Append(1, EncodeKV("key", bytes.Repeat([]byte{byte(i)}, 16))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	before := l.SegmentCount()
	base, err := l.Rotate()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	live := EncodeKV("key", []byte("live-state"))
	if _, err := l.Append(1, live); err != nil {
		t.Fatalf("rewrite append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	removed, err := l.Compact(base)
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if removed == 0 || l.SegmentCount() >= before {
		t.Fatalf("compaction removed %d segments (count %d -> %d)", removed, before, l.SegmentCount())
	}
	l.Close()

	l2, got := recoverAll(t, dir)
	defer l2.Close()
	if len(got) != 1 {
		t.Fatalf("recovered %d records after compaction, want 1", len(got))
	}
	if got[0].Index != uint64(base) || !bytes.Equal(got[0].Data, live) {
		t.Fatalf("compacted state diverged: %+v", got[0])
	}
}
