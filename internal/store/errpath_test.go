package store

// Error-path behavior: the state plane must fail loudly and precisely —
// bad keys rejected before touching disk, closed logs refusing work,
// unreadable state surfacing errors instead of quietly serving less.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEncodeKVTruncatesOversizeKeys(t *testing.T) {
	long := strings.Repeat("k", 0x10000+5)
	key, value, err := DecodeKV(EncodeKV(long, []byte("v")))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(key) != 0xffff {
		t.Fatalf("oversize key encoded to %d bytes, want the 0xffff clamp", len(key))
	}
	if !bytes.HasPrefix([]byte("v"), value) || len(value) != 1 {
		t.Fatalf("value corrupted by key clamp: %q", value)
	}
}

func TestOpenRefusesBlockedSubdirectories(t *testing.T) {
	// A file squatting where the wal/ directory belongs.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("blocked wal/ accepted")
	}

	// A file squatting where objects/ belongs.
	dir = t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "objects"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("blocked objects/ accepted")
	}

	// A file squatting on the data dir itself.
	squat := filepath.Join(t.TempDir(), "squat")
	if err := os.WriteFile(squat, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(squat, Options{}); err == nil {
		t.Fatal("file-as-data-dir accepted")
	}
	if _, err := OpenLog(filepath.Join(squat, "wal"), Options{}); err == nil {
		t.Fatal("file-as-log-dir accepted")
	}
}

func TestOpenLogRejectsUnparseableSegmentName(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-nothex.seg"), []byte("CWL1"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenLog(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unparseable segment name: got %v, want ErrCorrupt", err)
	}
}

func TestObjectOperationsRejectBadKeys(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	bad := []string{"", ".hidden", "a/b", "a b", strings.Repeat("x", 129)}
	for _, key := range bad {
		if err := st.Objects.Put(key, []byte("v")); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
		if _, _, err := st.Objects.Get(key); err == nil {
			t.Errorf("Get(%q) accepted", key)
		}
		if err := st.Objects.Delete(key); err == nil {
			t.Errorf("Delete(%q) accepted", key)
		}
		if st.Objects.Has(key) {
			t.Errorf("Has(%q) true", key)
		}
	}
}

func TestObjectPathObstructions(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// A file where the shard directory belongs blocks Put.
	if err := os.WriteFile(filepath.Join(st.Dir, "objects", "ab"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Objects.Put("abcd", []byte("v")); err == nil {
		t.Fatal("Put through a blocked shard dir succeeded")
	}

	// A directory where an object belongs errors on Get and on Delete
	// (a directory is not removable by the object unlink).
	blocked := filepath.Join(st.Dir, "objects", "cd", "cdef")
	if err := os.MkdirAll(filepath.Join(blocked, "child"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Objects.Get("cdef"); err == nil {
		t.Fatal("Get of a directory-shaped object succeeded")
	}
	if err := st.Objects.Delete("cdef"); err == nil {
		t.Fatal("Delete of a non-empty directory-shaped object succeeded")
	}
}

func TestObjectKeysErrorsAndFiltering(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Objects.Put("deadbeef", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Stray non-shard files and dot files must not surface as keys.
	if err := os.WriteFile(filepath.Join(st.Dir, "objects", "stray"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.Dir, "objects", "de", ".tmp-obj-x"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := st.Objects.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "deadbeef" {
		t.Fatalf("keys = %v, want [deadbeef]", keys)
	}

	if err := os.RemoveAll(filepath.Join(st.Dir, "objects")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Objects.Keys(); err == nil {
		t.Fatal("Keys on a vanished store succeeded")
	}
}

func TestReplayPropagatesCallbackError(t *testing.T) {
	l, err := OpenLog(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("stop here")
	seen := 0
	err = l.Replay(func(Record) error {
		seen++
		if seen == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("callback error not propagated: %v", err)
	}
	if seen != 2 {
		t.Fatalf("replay continued past the error: %d records seen", seen)
	}
}

func TestClosedLogRefusesRotateSyncReplay(t *testing.T) {
	l, err := OpenLog(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := l.Rotate(); err == nil {
		t.Error("Rotate on closed log succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Error("Sync on closed log succeeded")
	}
}

func TestRotateEmptyActiveIsNoOp(t *testing.T) {
	l, err := OpenLog(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	base, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 || l.SegmentCount() != 1 {
		t.Fatalf("empty rotate created a segment: base %d, %d segments", base, l.SegmentCount())
	}
}

func TestJournalLatestSurfacesMalformedRecords(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := st.Journal(9, "search")
	if _, ok, err := j.Latest(); err != nil || ok {
		t.Fatalf("empty journal: ok=%v err=%v", ok, err)
	}
	// A record of the journal's type whose payload is not a KV frame.
	if _, err := st.Log.Append(9, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Latest(); err == nil {
		t.Fatal("malformed journal record not surfaced")
	}
}
