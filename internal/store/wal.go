package store

// The segmented write-ahead log. Segments are files named by the global
// index of their first record (wal-%016x.seg); each starts with a
// 12-byte header (magic "CWL1" + base index) and carries a run of
// record frames (frame.go). Appends go to the newest (active) segment
// and rotate once it passes Options.SegmentBytes; fsync follows the
// configured policy. OpenLog recovers: it scans every segment, verifies
// every CRC, truncates a torn or corrupt tail in the newest segment,
// and refuses (with ErrCorrupt) to open a log whose supposedly-durable
// interior fails verification.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// segMagic opens every segment file; the digit is the format version.
const segMagic = "CWL1"

// segHeaderSize is magic (4) + base record index (8, LE).
const segHeaderSize = 12

// ErrCorrupt marks damage recovery must not repair silently: a CRC or
// framing failure anywhere before the newest segment's tail. Torn tails
// (the crash-consistent case) are truncated instead and never surface
// this error.
var ErrCorrupt = errors.New("store: corrupt log interior")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a record returned from
	// Append survives an immediate crash. The default, and what the
	// crash-recovery conformance suite runs under.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs every Options.SyncEvery appends and on
	// rotation and Close; a crash loses at most the unsynced suffix,
	// and recovery still yields a clean durable prefix.
	SyncInterval
	// SyncNever leaves flushing to the OS (benchmarks, tests).
	SyncNever
)

// Options size the log. Zero values take the documented defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it passes this size
	// (default 4 MiB). Every segment holds at least one record.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval append stride (default 64).
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	return o
}

// Record is one replayed WAL entry.
type Record struct {
	// Index is the record's global position, monotone across segments.
	Index uint64
	Type  uint8
	Data  []byte
}

// segment is one closed or active segment's bookkeeping.
type segment struct {
	base  uint64 // global index of the first record
	count uint64 // records in the segment
	path  string
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segs     []segment // closed segments, ascending
	active   segment
	activeF  *os.File
	size     int64 // active segment file size
	next     uint64
	unsynced int

	truncated int // corrupt/torn tail bytes dropped during recovery
}

// OpenLog opens (creating or recovering) the log in dir.
func OpenLog(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	if err := l.recover(); err != nil {
		return nil, err
	}
	return l, nil
}

// segPath names the segment whose first record has the given index.
func (l *Log) segPath(base uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%016x.seg", base))
}

// listSegments returns the on-disk segment files ascending by base.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: segment name %q", ErrCorrupt, name)
		}
		segs = append(segs, segment{base: base, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// recover scans the on-disk state into a serving log. Interior damage
// is ErrCorrupt; tail damage is truncated.
func (l *Log) recover() error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return l.createSegment(0, nil)
	}
	// A crash during rotation can leave the newest segment without a
	// complete, valid header; such a file holds no durable records and
	// is discarded. Anywhere else a bad header is interior corruption.
	last := len(segs) - 1
	for i := range segs {
		data, err := os.ReadFile(segs[i].path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		base, hdrErr := parseSegHeader(data, segs[i].base)
		if hdrErr != nil {
			if i == last {
				if err := os.Remove(segs[i].path); err != nil {
					return fmt.Errorf("store: drop torn segment: %w", err)
				}
				if err := syncDir(l.dir); err != nil {
					return err
				}
				l.truncated += len(data)
				segs = segs[:last]
				break
			}
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, segs[i].path, hdrErr)
		}
		if i > 0 && base != segs[i-1].base+segs[i-1].count {
			return fmt.Errorf("%w: %s: base %d does not continue previous segment (want %d)",
				ErrCorrupt, segs[i].path, base, segs[i-1].base+segs[i-1].count)
		}
		count, validLen, scanErr := scanFrames(data[segHeaderSize:])
		if scanErr != nil && i != last {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, segs[i].path, scanErr)
		}
		if scanErr != nil {
			// Torn or corrupt tail in the newest segment: cut the file
			// back to its last whole record.
			keep := int64(segHeaderSize + validLen)
			l.truncated += len(data) - int(keep)
			if err := os.Truncate(segs[i].path, keep); err != nil {
				return fmt.Errorf("store: truncate torn tail: %w", err)
			}
		}
		segs[i].count = count
	}
	if len(segs) == 0 {
		// The only segment was a torn rotation; start over.
		return l.createSegment(0, nil)
	}
	act := segs[len(segs)-1]
	f, err := os.OpenFile(act.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if l.truncated > 0 {
		// Make the truncation itself durable before appending past it.
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	l.segs = segs[:len(segs)-1]
	l.active = act
	l.activeF = f
	l.size = size
	l.next = act.base + act.count
	return nil
}

// parseSegHeader validates a segment header against the base its file
// name claims.
func parseSegHeader(data []byte, wantBase uint64) (uint64, error) {
	if len(data) < segHeaderSize {
		return 0, fmt.Errorf("short header (%d bytes)", len(data))
	}
	if string(data[:4]) != segMagic {
		return 0, fmt.Errorf("bad magic %q", data[:4])
	}
	base := binary.LittleEndian.Uint64(data[4:12])
	if base != wantBase {
		return 0, fmt.Errorf("header base %d disagrees with file name base %d", base, wantBase)
	}
	return base, nil
}

// scanFrames walks a segment body, returning the number of whole valid
// records and the byte length they span. A framing or CRC failure stops
// the scan with the error; everything before it is intact.
func scanFrames(body []byte) (count uint64, validLen int, err error) {
	off := 0
	for off < len(body) {
		_, _, n, err := parseFrame(body[off:])
		if err != nil {
			return count, off, err
		}
		off += n
		count++
	}
	return count, off, nil
}

// createSegment starts a fresh segment whose first record will have the
// given index, leaving it active. prev, when set, is the outgoing
// active file to sync and close first.
func (l *Log) createSegment(base uint64, prev *os.File) error {
	if prev != nil {
		if err := prev.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := prev.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	path := l.segPath(base)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], base)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	if l.activeF != nil {
		l.segs = append(l.segs, l.active)
	}
	l.active = segment{base: base, path: path}
	l.activeF = f
	l.size = segHeaderSize
	l.next = base
	l.unsynced = 0
	return nil
}

// Append writes one record and returns its global index. Durability on
// return follows the sync policy.
func (l *Log) Append(typ uint8, data []byte) (uint64, error) {
	if len(data) > MaxRecordBytes {
		return 0, fmt.Errorf("store: record payload %d exceeds %d bytes", len(data), MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.activeF == nil {
		return 0, fmt.Errorf("store: log closed")
	}
	frame := appendFrame(nil, typ, data)
	if l.size+int64(len(frame)) > l.opts.SegmentBytes && l.active.count > 0 {
		if err := l.createSegment(l.next, l.activeF); err != nil {
			return 0, err
		}
	}
	if _, err := l.activeF.Write(frame); err != nil {
		return 0, fmt.Errorf("store: append: %w", err)
	}
	idx := l.next
	l.next++
	l.active.count++
	l.size += int64(len(frame))
	l.unsynced++
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.activeF.Sync(); err != nil {
			return 0, fmt.Errorf("store: fsync: %w", err)
		}
		l.unsynced = 0
	case SyncInterval:
		if l.unsynced >= l.opts.SyncEvery {
			if err := l.activeF.Sync(); err != nil {
				return 0, fmt.Errorf("store: fsync: %w", err)
			}
			l.unsynced = 0
		}
	}
	return idx, nil
}

// Sync forces the active segment to stable storage regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.activeF == nil {
		return fmt.Errorf("store: log closed")
	}
	if err := l.activeF.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	l.unsynced = 0
	return nil
}

// Replay streams every record oldest-first. The data slice is private
// to the callback invocation. Replay holds the log lock: appends wait.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	all := append(append([]segment(nil), l.segs...), l.active)
	for _, s := range all {
		data, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("store: replay: %w", err)
		}
		body := data[min(segHeaderSize, len(data)):]
		idx := s.base
		off := 0
		for off < len(body) {
			typ, payload, n, err := parseFrame(body[off:])
			if err != nil {
				// The scan at Open verified every frame; damage here
				// arrived after recovery.
				return fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, s.path, segHeaderSize+off, err)
			}
			if err := fn(Record{Index: idx, Type: typ, Data: payload}); err != nil {
				return err
			}
			idx++
			off += n
		}
	}
	return nil
}

// Rotate seals the active segment (when it holds records) and opens a
// fresh one, returning the fresh segment's base index. The compaction
// pattern: Rotate, re-append live state, Sync, Compact(base).
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.activeF == nil {
		return 0, fmt.Errorf("store: log closed")
	}
	if l.active.count == 0 {
		return l.active.base, nil
	}
	if err := l.createSegment(l.next, l.activeF); err != nil {
		return 0, err
	}
	return l.active.base, nil
}

// Compact removes every closed segment all of whose records precede
// the given index. The active segment is never removed.
func (l *Log) Compact(before uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := l.segs[:0]
	for _, s := range l.segs {
		if s.base+s.count <= before {
			if err := os.Remove(s.path); err != nil {
				return removed, fmt.Errorf("store: compact: %w", err)
			}
			removed++
			continue
		}
		keep = append(keep, s)
	}
	l.segs = keep
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// NextIndex is the index the next Append will return.
func (l *Log) NextIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// SegmentCount is the number of on-disk segments, active included.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs) + 1
}

// TruncatedBytes reports how many torn or corrupt tail bytes recovery
// dropped when this log was opened.
func (l *Log) TruncatedBytes() int { return l.truncated }

// Close syncs and closes the active segment. The log is unusable after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.activeF == nil {
		return nil
	}
	err := l.activeF.Sync()
	if cerr := l.activeF.Close(); err == nil {
		err = cerr
	}
	l.activeF = nil
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so entry creation/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}
