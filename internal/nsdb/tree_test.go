package nsdb

// Table-driven coverage of the path-tree wildcard semantics (§5.1):
// "*" binds exactly one segment, a trailing "**" binds any remainder
// including none, and path normalization makes slash spelling
// irrelevant. These pin the corner cases the broad-strokes tests in
// nsdb_test.go skip: root patterns, values on interior vertices,
// deleted values, and the one-segment/zero-segment boundary.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// demoTree builds the store shared by the match tables. Note devices
// holds both interior values (pod0) and leaves under it.
func demoTree() *tree {
	var tr tree
	tr.set("/", "root")
	tr.set("/devices/pod0", "pod")
	tr.set("/devices/pod0/fsw0/rpa", "rpa-a")
	tr.set("/devices/pod0/fsw1/rpa", "rpa-b")
	tr.set("/devices/pod0/fsw1/fib", "fib-b")
	tr.set("/devices/pod1/fsw0/rpa", "rpa-c")
	tr.set("/links/pod0/up", "link")
	return &tr
}

func TestTreeMatchTable(t *testing.T) {
	tr := demoTree()
	cases := []struct {
		name    string
		pattern string
		want    []string // matched paths, sorted
	}{
		{"exact leaf", "/devices/pod0/fsw0/rpa", []string{"/devices/pod0/fsw0/rpa"}},
		{"exact interior value", "/devices/pod0", []string{"/devices/pod0"}},
		{"exact miss", "/devices/pod9", nil},
		{"valueless interior", "/devices", nil},
		{"root empty pattern", "", []string{"/"}},
		{"root slash pattern", "///", []string{"/"}},
		{"star one segment", "/devices/*", []string{"/devices/pod0"}},
		{"star then literal", "/devices/*/fsw0/rpa", []string{"/devices/pod0/fsw0/rpa", "/devices/pod1/fsw0/rpa"}},
		{"two stars", "/devices/*/*/rpa", []string{"/devices/pod0/fsw0/rpa", "/devices/pod0/fsw1/rpa", "/devices/pod1/fsw0/rpa"}},
		{"star never spans", "/devices/*/rpa", nil},
		{"star at leaf level", "/devices/pod0/fsw1/*", []string{"/devices/pod0/fsw1/fib", "/devices/pod0/fsw1/rpa"}},
		{"doublestar whole tree", "/**", []string{
			"/", "/devices/pod0", "/devices/pod0/fsw0/rpa", "/devices/pod0/fsw1/fib",
			"/devices/pod0/fsw1/rpa", "/devices/pod1/fsw0/rpa", "/links/pod0/up",
		}},
		{"doublestar subtree", "/devices/pod0/**", []string{
			"/devices/pod0", "/devices/pod0/fsw0/rpa", "/devices/pod0/fsw1/fib", "/devices/pod0/fsw1/rpa",
		}},
		{"doublestar zero segments", "/links/pod0/up/**", []string{"/links/pod0/up"}},
		{"doublestar under miss", "/ghost/**", nil},
		{"star then doublestar", "/devices/*/fsw1/**", []string{"/devices/pod0/fsw1/fib", "/devices/pod0/fsw1/rpa"}},
		{"pattern deeper than tree", "/links/pod0/up/down", nil},
		{"unnormalized spelling", "devices//pod0/fsw0/rpa/", []string{"/devices/pod0/fsw0/rpa"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tr.match(tc.pattern)
			var paths []string
			for p := range got {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			if !reflect.DeepEqual(paths, tc.want) {
				t.Errorf("match(%q) = %v, want %v", tc.pattern, paths, tc.want)
			}
		})
	}
}

func TestTreeMatchSkipsDeleted(t *testing.T) {
	tr := demoTree()
	tr.del("/devices/pod0/fsw1/rpa")
	got := tr.match("/devices/pod0/**")
	if _, ok := got["/devices/pod0/fsw1/rpa"]; ok {
		t.Errorf("deleted value still matches: %v", got)
	}
	// The vertex survives as an interior node; its sibling value does too.
	if _, ok := got["/devices/pod0/fsw1/fib"]; !ok {
		t.Errorf("sibling value lost after delete: %v", got)
	}
}

func TestTreeMatchValues(t *testing.T) {
	tr := demoTree()
	got := tr.match("/devices/*/fsw0/rpa")
	want := map[string]any{
		"/devices/pod0/fsw0/rpa": "rpa-a",
		"/devices/pod1/fsw0/rpa": "rpa-c",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("match values = %v, want %v", got, want)
	}
}

func TestMatchPathTable(t *testing.T) {
	cases := []struct {
		pattern string
		path    string
		want    bool
	}{
		{"/a/b", "/a/b", true},
		{"/a/b", "a/b/", true}, // normalization
		{"/a/b", "/a/b/c", false},
		{"/a/b/c", "/a/b", false},
		{"/a/*", "/a/b", true},
		{"/a/*", "/a", false}, // "*" binds exactly one
		{"/a/*", "/a/b/c", false},
		{"/*/c", "/a/c", true},
		{"/*/c", "/a/b/c", false},
		{"/a/**", "/a", true}, // "**" binds zero
		{"/a/**", "/a/b/c/d", true},
		{"/**", "/", true},
		{"/**", "/anything/at/all", true},
		{"/a/**", "/b", false},
		{"", "/", true},
		{"", "/a", false},
		{"/a/*/c", "/a/b/c", true},
		{"/a/*/c", "/a/b/d", false},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s vs %s", tc.pattern, tc.path), func(t *testing.T) {
			if got := matchPath(tc.pattern, tc.path); got != tc.want {
				t.Errorf("matchPath(%q, %q) = %v, want %v", tc.pattern, tc.path, got, tc.want)
			}
		})
	}
}

// TestTreeMatchDeterministic pins that repeated matches over the same
// tree agree — the walk sorts child keys, so iteration order of the
// underlying maps never shows through.
func TestTreeMatchDeterministic(t *testing.T) {
	var tr tree
	for i := 0; i < 64; i++ {
		tr.set(fmt.Sprintf("/d/n%02d/v", i), i)
	}
	first := tr.match("/d/*/v")
	if len(first) != 64 {
		t.Fatalf("got %d matches, want 64", len(first))
	}
	for i := 0; i < 8; i++ {
		if got := tr.match("/d/*/v"); !reflect.DeepEqual(got, first) {
			t.Fatalf("match pass %d diverged", i)
		}
	}
}
