package nsdb

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"centralium/internal/metrics"
)

// View distinguishes the two contrasting network views every Centralium
// service maintains (Section 5.1).
type View int

// The two views.
const (
	// Intended captures what applications want network state to be.
	Intended View = iota
	// Current captures the actual network state (ground truth).
	Current
)

// String returns "intended" or "current".
func (v View) String() string {
	if v == Intended {
		return "intended"
	}
	return "current"
}

// Event is one published change, delivered to matching subscribers.
type Event struct {
	View  View
	Path  string
	Value any // nil for deletions
	// Deleted marks a removal.
	Deleted bool
}

// subscription is one registered watcher.
type subscription struct {
	id      int
	view    View
	pattern string
	ch      chan Event
}

// Store holds one replica's state: the intended and current trees plus
// subscriber fan-out. All methods are safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	views   [2]tree
	subs    map[int]*subscription
	nextSub int

	writes int64

	// meter, when set, accounts write-path busy time to this replica task
	// (the Figure 11 CPU metric).
	meter *metrics.TaskMeter
}

// SetMeter attaches a task meter; write operations credit busy time to it.
func (s *Store) SetMeter(m *metrics.TaskMeter) {
	s.mu.Lock()
	s.meter = m
	s.mu.Unlock()
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{subs: make(map[int]*subscription)}
}

// Set writes a value and publishes the change to matching subscribers.
func (s *Store) Set(v View, path string, value any) {
	start := time.Now()
	s.mu.Lock()
	s.views[v].set(path, value)
	s.writes++
	writes := s.writes
	subs := s.matchingSubs(v, path)
	meter := s.meter
	s.mu.Unlock()
	if meter != nil {
		meter.AddBusy(time.Since(start))
		// Re-measuring the full state footprint on every write would
		// dominate the cost being measured; sample it periodically.
		if writes%64 == 1 {
			meter.SetHeapBytes(s.SizeBytes())
		}
	}
	ev := Event{View: v, Path: canonical(path), Value: value}
	for _, sub := range subs {
		select {
		case sub.ch <- ev:
		default: // slow subscriber: drop rather than block the store
		}
	}
}

// Get reads a value.
func (s *Store) Get(v View, path string) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.views[v].get(path)
}

// Delete removes a value and publishes a deletion event if one existed.
func (s *Store) Delete(v View, path string) {
	s.mu.Lock()
	had := s.views[v].del(path)
	var subs []*subscription
	if had {
		s.writes++
		subs = s.matchingSubs(v, path)
	}
	s.mu.Unlock()
	if !had {
		return
	}
	ev := Event{View: v, Path: canonical(path), Deleted: true}
	for _, sub := range subs {
		select {
		case sub.ch <- ev:
		default:
		}
	}
}

// GetMatch returns path->value for all entries matching the wildcard
// pattern ("*" one segment, trailing "**" any depth).
func (s *Store) GetMatch(v View, pattern string) map[string]any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.views[v].match(pattern)
}

// Keys returns the sorted matching paths.
func (s *Store) Keys(v View, pattern string) []string {
	m := s.GetMatch(v, pattern)
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Subscribe registers a watcher for changes under the pattern in the view.
// The returned cancel function must be called to release the subscription.
// Slow subscribers lose events rather than block writers (the paper's
// eventual-consistency posture: reconciliation loops re-read state anyway).
func (s *Store) Subscribe(v View, pattern string, buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	sub := &subscription{id: id, view: v, pattern: pattern, ch: make(chan Event, buffer)}
	s.subs[id] = sub
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(sub.ch)
		}
		s.mu.Unlock()
	}
	return sub.ch, cancel
}

func (s *Store) matchingSubs(v View, path string) []*subscription {
	var out []*subscription
	for _, sub := range s.subs {
		if sub.view == v && matchPath(sub.pattern, path) {
			out = append(out, sub)
		}
	}
	return out
}

func canonical(path string) string {
	segs := splitPath(path)
	out := "/"
	for i, s := range segs {
		if i > 0 {
			out += "/"
		}
		out += s
	}
	return out
}

// OutOfSync compares the intended and current views under a pattern and
// returns the paths whose values differ (by JSON equality) or exist in only
// one view — the straggler-detection primitive behind the consistency
// guarantee of Section 5.1.
func (s *Store) OutOfSync(pattern string) []string {
	intended := s.GetMatch(Intended, pattern)
	current := s.GetMatch(Current, pattern)
	seen := make(map[string]bool)
	var out []string
	for path, iv := range intended {
		seen[path] = true
		cv, ok := current[path]
		if !ok || !jsonEqual(iv, cv) {
			out = append(out, path)
		}
	}
	for path := range current {
		if !seen[path] {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

func jsonEqual(a, b any) bool {
	da, errA := json.Marshal(a)
	db, errB := json.Marshal(b)
	if errA != nil || errB != nil {
		return false
	}
	return string(da) == string(db)
}

// SizeBytes approximates the store's state footprint (both views, JSON
// encoded) — the memory figure sampled for Figure 11(b).
func (s *Store) SizeBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for v := range s.views {
		for _, val := range s.views[v].match("/**") {
			if data, err := json.Marshal(val); err == nil {
				total += int64(len(data))
			}
		}
	}
	return total
}

// Writes returns the cumulative write count.
func (s *Store) Writes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.writes
}

// Snapshot copies every entry of both views (used for replica catch-up).
func (s *Store) Snapshot() map[View]map[string]any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[View]map[string]any, 2)
	for _, v := range []View{Intended, Current} {
		out[v] = s.views[v].match("/**")
	}
	return out
}

// LoadSnapshot replaces the store's contents with the snapshot.
func (s *Store) LoadSnapshot(snap map[View]map[string]any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.views[Intended] = tree{}
	s.views[Current] = tree{}
	for v, entries := range snap {
		for path, val := range entries {
			s.views[v].set(path, val)
		}
	}
}

// DevicePath builds the conventional path for a device's subtree, e.g.
// DevicePath("ssw.pl0.0", "rpa") -> "/devices/ssw.pl0.0/rpa".
func DevicePath(device string, parts ...string) string {
	p := "/devices/" + device
	for _, part := range parts {
		p += "/" + part
	}
	return p
}

// ErrNoLeader is returned by cluster reads when every replica is down.
var ErrNoLeader = fmt.Errorf("nsdb: no live replica")
