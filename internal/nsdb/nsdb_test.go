package nsdb

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestTreeSetGetDelete(t *testing.T) {
	var tr tree
	tr.set("/devices/ssw0/rpa", "v1")
	if v, ok := tr.get("devices/ssw0/rpa/"); !ok || v != "v1" {
		t.Fatalf("get = %v,%v", v, ok)
	}
	if _, ok := tr.get("/devices/ssw0"); ok {
		t.Fatal("intermediate vertex has a value")
	}
	if _, ok := tr.get("/devices/missing"); ok {
		t.Fatal("missing path returned value")
	}
	if !tr.del("/devices/ssw0/rpa") {
		t.Fatal("delete reported false")
	}
	if tr.del("/devices/ssw0/rpa") {
		t.Fatal("double delete reported true")
	}
	// Children survive parent value deletion.
	tr.set("/a", 1)
	tr.set("/a/b", 2)
	tr.del("/a")
	if v, ok := tr.get("/a/b"); !ok || v != 2 {
		t.Fatalf("child lost: %v,%v", v, ok)
	}
}

func TestTreeWildcards(t *testing.T) {
	var tr tree
	tr.set("/devices/ssw0/rpa", 1)
	tr.set("/devices/ssw1/rpa", 2)
	tr.set("/devices/ssw1/health", 3)
	tr.set("/jobs/x", 4)

	m := tr.match("/devices/*/rpa")
	if len(m) != 2 || m["/devices/ssw0/rpa"] != 1 || m["/devices/ssw1/rpa"] != 2 {
		t.Fatalf("match = %v", m)
	}
	m = tr.match("/devices/**")
	if len(m) != 3 {
		t.Fatalf("match ** = %v", m)
	}
	m = tr.match("/**")
	if len(m) != 4 {
		t.Fatalf("match all = %v", m)
	}
	m = tr.match("/devices/ssw1/health")
	if len(m) != 1 {
		t.Fatalf("exact match = %v", m)
	}
	if got := tr.match("/nothing/*"); len(got) != 0 {
		t.Fatalf("empty match = %v", got)
	}
}

func TestMatchPath(t *testing.T) {
	tests := []struct {
		pattern, path string
		want          bool
	}{
		{"/a/b", "/a/b", true},
		{"/a/b", "/a/c", false},
		{"/a/*", "/a/b", true},
		{"/a/*", "/a/b/c", false},
		{"/a/**", "/a/b/c", true},
		{"/a/**", "/a", true},
		{"/**", "/anything/at/all", true},
		{"/a/b/c", "/a/b", false},
		{"/a", "/a/b", false},
	}
	for _, tt := range tests {
		if got := matchPath(tt.pattern, tt.path); got != tt.want {
			t.Errorf("matchPath(%q, %q) = %v, want %v", tt.pattern, tt.path, got, tt.want)
		}
	}
}

func TestStoreSetGetViews(t *testing.T) {
	s := NewStore()
	s.Set(Intended, "/devices/x/rpa", "want")
	s.Set(Current, "/devices/x/rpa", "have")
	if v, _ := s.Get(Intended, "/devices/x/rpa"); v != "want" {
		t.Fatalf("intended = %v", v)
	}
	if v, _ := s.Get(Current, "/devices/x/rpa"); v != "have" {
		t.Fatalf("current = %v", v)
	}
	if Intended.String() != "intended" || Current.String() != "current" {
		t.Error("View.String wrong")
	}
	if s.Writes() != 2 {
		t.Errorf("Writes = %d", s.Writes())
	}
}

func TestStoreSubscribe(t *testing.T) {
	s := NewStore()
	ch, cancel := s.Subscribe(Intended, "/devices/*/rpa", 8)
	defer cancel()

	s.Set(Intended, "/devices/x/rpa", 1)
	s.Set(Current, "/devices/x/rpa", 2)    // wrong view: no event
	s.Set(Intended, "/devices/x/other", 3) // wrong path: no event
	s.Delete(Intended, "/devices/x/rpa")
	s.Delete(Intended, "/devices/x/rpa") // second delete: no event

	ev := <-ch
	if ev.Path != "/devices/x/rpa" || ev.Value != 1 || ev.Deleted {
		t.Fatalf("event = %+v", ev)
	}
	ev = <-ch
	if !ev.Deleted {
		t.Fatalf("event = %+v, want deletion", ev)
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected extra event %+v", ev)
	default:
	}
	cancel()
	cancel() // double cancel must not panic
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
}

func TestStoreSlowSubscriberDrops(t *testing.T) {
	s := NewStore()
	_, cancel := s.Subscribe(Intended, "/**", 1)
	defer cancel()
	// Two writes into a 1-buffer channel: second is dropped, not blocking.
	done := make(chan struct{})
	go func() {
		s.Set(Intended, "/a", 1)
		s.Set(Intended, "/b", 2)
		close(done)
	}()
	<-done // must not deadlock
}

func TestStoreGetMatchAndKeys(t *testing.T) {
	s := NewStore()
	s.Set(Current, "/devices/a/health", "ok")
	s.Set(Current, "/devices/b/health", "bad")
	keys := s.Keys(Current, "/devices/*/health")
	if len(keys) != 2 || keys[0] != "/devices/a/health" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestOutOfSync(t *testing.T) {
	s := NewStore()
	s.Set(Intended, "/devices/a/rpa", map[string]any{"v": 1})
	s.Set(Current, "/devices/a/rpa", map[string]any{"v": 1})
	s.Set(Intended, "/devices/b/rpa", map[string]any{"v": 2})
	s.Set(Current, "/devices/b/rpa", map[string]any{"v": 99}) // straggler
	s.Set(Intended, "/devices/c/rpa", map[string]any{"v": 3}) // not yet deployed
	s.Set(Current, "/devices/d/rpa", map[string]any{"v": 4})  // unexpected extra

	diff := s.OutOfSync("/devices/*/rpa")
	want := []string{"/devices/b/rpa", "/devices/c/rpa", "/devices/d/rpa"}
	if len(diff) != len(want) {
		t.Fatalf("OutOfSync = %v, want %v", diff, want)
	}
	for i := range want {
		if diff[i] != want[i] {
			t.Fatalf("OutOfSync = %v, want %v", diff, want)
		}
	}
}

func TestSizeBytesAndSnapshot(t *testing.T) {
	s := NewStore()
	if s.SizeBytes() != 0 {
		t.Fatal("empty store has size")
	}
	s.Set(Intended, "/a", map[string]any{"k": "0123456789"})
	if s.SizeBytes() <= 0 {
		t.Fatal("SizeBytes = 0 after write")
	}
	snap := s.Snapshot()
	s2 := NewStore()
	s2.LoadSnapshot(snap)
	if v, ok := s2.Get(Intended, "/a"); !ok {
		t.Fatalf("snapshot lost value: %v", v)
	}
}

func TestDevicePath(t *testing.T) {
	if got := DevicePath("ssw0", "rpa", "intended"); got != "/devices/ssw0/rpa/intended" {
		t.Fatalf("DevicePath = %q", got)
	}
	if got := DevicePath("x"); got != "/devices/x" {
		t.Fatalf("DevicePath = %q", got)
	}
}

func TestClusterLeaderElection(t *testing.T) {
	c := NewCluster(3)
	if l := c.Leader(); l == nil || l.ID != 0 {
		t.Fatalf("initial leader = %+v", l)
	}
	c.Publish(Intended, "/x", 1)
	// All replicas got the write.
	for _, r := range c.Replicas() {
		if v, ok := r.Store.Get(Intended, "/x"); !ok || v != 1 {
			t.Fatalf("replica %d missing write", r.ID)
		}
	}
	// Leader fails: next replica takes over, term bumps.
	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	if l := c.Leader(); l.ID != 1 {
		t.Fatalf("leader after failure = %d, want 1", l.ID)
	}
	if c.Term() != 1 || c.Elections() != 1 {
		t.Fatalf("term/elections = %d/%d", c.Term(), c.Elections())
	}
	// Reads re-route automatically.
	if v, ok, err := c.Read(Intended, "/x"); err != nil || !ok || v != 1 {
		t.Fatalf("read after failover = %v,%v,%v", v, ok, err)
	}
	// Non-leader failure does not bump the term.
	c.Fail(2)
	if c.Term() != 1 {
		t.Fatalf("term after non-leader failure = %d", c.Term())
	}
	c.Fail(2) // repeated failure is a no-op
}

func TestClusterWritesSkipDeadCatchUpOnRecover(t *testing.T) {
	c := NewCluster(2)
	c.Fail(1)
	c.Publish(Intended, "/x", "v")
	c.PublishDelete(Intended, "/never-there")
	if _, ok := c.Replicas()[1].Store.Get(Intended, "/x"); ok {
		t.Fatal("dead replica received write")
	}
	if err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Replicas()[1].Store.Get(Intended, "/x"); !ok || v != "v" {
		t.Fatal("recovered replica did not catch up")
	}
	if !c.Alive(1) {
		t.Fatal("Alive wrong")
	}
	if err := c.Recover(1); err != nil { // already alive: no-op
		t.Fatal(err)
	}
}

func TestClusterAllDown(t *testing.T) {
	c := NewCluster(1)
	c.Fail(0)
	if _, _, err := c.Read(Intended, "/x"); err != ErrNoLeader {
		t.Fatalf("err = %v, want ErrNoLeader", err)
	}
	if _, err := c.ReadMatch(Intended, "/**"); err != ErrNoLeader {
		t.Fatalf("err = %v, want ErrNoLeader", err)
	}
	c.Publish(Intended, "/x", 1) // writes to nobody; must not panic
	// Recovery without any leader: replica keeps (empty) state, becomes
	// leader, term bumps.
	if err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	if l := c.Leader(); l == nil || l.ID != 0 {
		t.Fatal("no leader after recovery")
	}
	if err := c.Fail(99); err == nil {
		t.Fatal("Fail(unknown) did not error")
	}
	if err := c.Recover(99); err == nil {
		t.Fatal("Recover(unknown) did not error")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				path := fmt.Sprintf("/devices/d%d/val", g)
				s.Set(Current, path, i)
				s.Get(Current, path)
				s.GetMatch(Current, "/devices/*/val")
				s.OutOfSync("/devices/**")
			}
		}(g)
	}
	wg.Wait()
}

func TestTreeRoundTripProperty(t *testing.T) {
	// Property: set then get returns the value for arbitrary simple paths.
	f := func(a, b uint8, val int) bool {
		path := fmt.Sprintf("/seg%d/seg%d", a%8, b%8)
		var tr tree
		tr.set(path, val)
		got, ok := tr.get(path)
		return ok && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
