// Package nsdb implements Centralium's Network State Database (Section 5.1):
// a tree-shaped store rooted at a device map, addressed by path strings,
// holding two contrasting views of the network — the intended state
// (what applications want) and the current state (ground truth collected
// from switches). Generic get/set/publish/subscribe APIs with wildcard
// matching make every service data-agnostic, and a small replica cluster
// with leader election provides the availability model of Section 5.2.
// (The paper's Thrift encapsulation is replaced by stdlib JSON.)
package nsdb

import (
	"sort"
	"strings"
)

// node is one tree vertex. A vertex can hold a value and children at once.
type node struct {
	children map[string]*node
	value    any
	hasValue bool
}

// tree is a path-addressed hierarchical store. Paths are "/"-separated;
// leading and trailing slashes are ignored ("/devices/x/rpa" == "devices/x/rpa/").
type tree struct {
	root node
}

// splitPath normalizes a path into segments.
func splitPath(p string) []string {
	var out []string
	for _, seg := range strings.Split(p, "/") {
		if seg != "" {
			out = append(out, seg)
		}
	}
	return out
}

// set stores a value at the path, creating intermediate vertices.
func (t *tree) set(path string, v any) {
	n := &t.root
	for _, seg := range splitPath(path) {
		if n.children == nil {
			n.children = make(map[string]*node)
		}
		child := n.children[seg]
		if child == nil {
			child = &node{}
			n.children[seg] = child
		}
		n = child
	}
	n.value = v
	n.hasValue = true
}

// get retrieves the value at the path.
func (t *tree) get(path string) (any, bool) {
	n := &t.root
	for _, seg := range splitPath(path) {
		n = n.children[seg]
		if n == nil {
			return nil, false
		}
	}
	if !n.hasValue {
		return nil, false
	}
	return n.value, true
}

// del removes the value at the path (children survive). It reports whether
// a value was present.
func (t *tree) del(path string) bool {
	segs := splitPath(path)
	n := &t.root
	for _, seg := range segs {
		n = n.children[seg]
		if n == nil {
			return false
		}
	}
	had := n.hasValue
	n.hasValue = false
	n.value = nil
	return had
}

// match returns path->value for every stored value whose path matches the
// pattern. Pattern segments: literal, "*" (any one segment), or a trailing
// "**" (any remaining segments, including none).
func (t *tree) match(pattern string) map[string]any {
	out := make(map[string]any)
	segs := splitPath(pattern)
	t.walk(&t.root, nil, segs, out)
	return out
}

func (t *tree) walk(n *node, prefix []string, pat []string, out map[string]any) {
	if len(pat) == 0 {
		if n.hasValue {
			out["/"+strings.Join(prefix, "/")] = n.value
		}
		return
	}
	if pat[0] == "**" {
		// Matches zero or more segments: collect this whole subtree.
		t.collect(n, prefix, out)
		return
	}
	if pat[0] == "*" {
		keys := sortedKeys(n.children)
		for _, k := range keys {
			t.walk(n.children[k], append(prefix, k), pat[1:], out)
		}
		return
	}
	if child := n.children[pat[0]]; child != nil {
		t.walk(child, append(prefix, pat[0]), pat[1:], out)
	}
}

func (t *tree) collect(n *node, prefix []string, out map[string]any) {
	if n.hasValue {
		out["/"+strings.Join(prefix, "/")] = n.value
	}
	for _, k := range sortedKeys(n.children) {
		t.collect(n.children[k], append(prefix, k), out)
	}
}

func sortedKeys(m map[string]*node) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// matchPath reports whether a concrete path matches a pattern (same syntax
// as match); used for subscription filtering.
func matchPath(pattern, path string) bool {
	pat, segs := splitPath(pattern), splitPath(path)
	i := 0
	for ; i < len(pat); i++ {
		if pat[i] == "**" {
			return true
		}
		if i >= len(segs) {
			return false
		}
		if pat[i] != "*" && pat[i] != segs[i] {
			return false
		}
	}
	return i == len(segs)
}
