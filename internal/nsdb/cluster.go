package nsdb

import (
	"fmt"
	"sync"
)

// Replica is one NSDB task (the paper runs two identical replicas per job
// with leader election).
type Replica struct {
	ID    int
	Store *Store
	alive bool
}

// Cluster is a small replicated NSDB: writes fan out to every live replica,
// reads go to the elected leader, and a failed leader is replaced by the
// next live replica automatically (Section 5.2, "Service Failures").
type Cluster struct {
	mu        sync.Mutex
	replicas  []*Replica
	term      int
	elections int
}

// NewCluster creates n live replicas (n >= 1).
func NewCluster(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.replicas = append(c.replicas, &Replica{ID: i, Store: NewStore(), alive: true})
	}
	return c
}

// Leader returns the elected leader: the lowest-ID live replica. It returns
// nil when every replica is down.
func (c *Cluster) Leader() *Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaderLocked()
}

func (c *Cluster) leaderLocked() *Replica {
	for _, r := range c.replicas {
		if r.alive {
			return r
		}
	}
	return nil
}

// Term returns the current election term.
func (c *Cluster) Term() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.term
}

// Elections returns how many leader changes have occurred.
func (c *Cluster) Elections() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elections
}

// Publish fans a write out to every live replica (the paper's
// eventual-consistency write path).
func (c *Cluster) Publish(v View, path string, value any) {
	c.mu.Lock()
	targets := c.liveLocked()
	c.mu.Unlock()
	for _, r := range targets {
		r.Store.Set(v, path, value)
	}
}

// PublishDelete fans a deletion out to every live replica.
func (c *Cluster) PublishDelete(v View, path string) {
	c.mu.Lock()
	targets := c.liveLocked()
	c.mu.Unlock()
	for _, r := range targets {
		r.Store.Delete(v, path)
	}
}

func (c *Cluster) liveLocked() []*Replica {
	var out []*Replica
	for _, r := range c.replicas {
		if r.alive {
			out = append(out, r)
		}
	}
	return out
}

// Read serves a leader read.
func (c *Cluster) Read(v View, path string) (any, bool, error) {
	l := c.Leader()
	if l == nil {
		return nil, false, ErrNoLeader
	}
	val, ok := l.Store.Get(v, path)
	return val, ok, nil
}

// ReadMatch serves a wildcard leader read.
func (c *Cluster) ReadMatch(v View, pattern string) (map[string]any, error) {
	l := c.Leader()
	if l == nil {
		return nil, ErrNoLeader
	}
	return l.Store.GetMatch(v, pattern), nil
}

// Fail marks a replica down; if it was the leader, the next live replica is
// elected (term bumps).
func (c *Cluster) Fail(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.findLocked(id)
	if r == nil {
		return fmt.Errorf("nsdb: no replica %d", id)
	}
	if !r.alive {
		return nil
	}
	wasLeader := c.leaderLocked() == r
	r.alive = false
	if wasLeader && c.leaderLocked() != nil {
		c.term++
		c.elections++
	}
	return nil
}

// Recover brings a replica back, catching its store up from the current
// leader before it rejoins (eventual consistency restored).
func (c *Cluster) Recover(id int) error {
	c.mu.Lock()
	r := c.findLocked(id)
	if r == nil {
		c.mu.Unlock()
		return fmt.Errorf("nsdb: no replica %d", id)
	}
	if r.alive {
		c.mu.Unlock()
		return nil
	}
	leader := c.leaderLocked()
	c.mu.Unlock()

	if leader != nil {
		r.Store.LoadSnapshot(leader.Store.Snapshot())
	}

	c.mu.Lock()
	wasLeaderless := c.leaderLocked() == nil
	r.alive = true
	if wasLeaderless || c.leaderLocked() == r {
		c.term++
		c.elections++
	}
	c.mu.Unlock()
	return nil
}

// Replicas returns all replicas (live and dead) for inspection.
func (c *Cluster) Replicas() []*Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Replica(nil), c.replicas...)
}

// Alive reports whether replica id is live.
func (c *Cluster) Alive(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.findLocked(id)
	return r != nil && r.alive
}

func (c *Cluster) findLocked(id int) *Replica {
	for _, r := range c.replicas {
		if r.ID == id {
			return r
		}
	}
	return nil
}
