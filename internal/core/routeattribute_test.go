package core

import "testing"

func TestAssignWeightsBasic(t *testing.T) {
	e := evaluator(t, &Config{RouteAttribute: []RouteAttributeStatement{{
		Name:        "te-weights",
		Destination: Destination{Community: "D"},
		NextHopWeights: []NextHopWeight{
			{Signature: PathSignature{NextHopRegex: "^eb\\.0"}, Weight: 3},
			{Signature: PathSignature{NextHopRegex: "^eb\\.1"}, Weight: 1},
		},
	}}})
	a := mkRoute("10.0.0.0/8", []uint32{1}, "D")
	a.NextHop = "eb.0"
	b := mkRoute("10.0.0.0/8", []uint32{2}, "D")
	b.NextHop = "eb.1"
	c := mkRoute("10.0.0.0/8", []uint32{3}, "D")
	c.NextHop = "eb.2" // unmatched -> default weight 1

	d := e.AssignWeights([]RouteAttrs{a, b, c}, 0)
	if !d.Applied {
		t.Fatal("statement did not apply")
	}
	want := []int{3, 1, 1}
	for i, w := range want {
		if d.Weights[i] != w {
			t.Errorf("weight[%d] = %d, want %d", i, d.Weights[i], w)
		}
	}
	if d.Statement != "te-weights" {
		t.Errorf("Statement = %q", d.Statement)
	}
}

func TestAssignWeightsFirstMatchingSignatureWins(t *testing.T) {
	e := evaluator(t, &Config{RouteAttribute: []RouteAttributeStatement{{
		Name:        "overlap",
		Destination: Destination{Community: "D"},
		NextHopWeights: []NextHopWeight{
			{Signature: PathSignature{NextHopRegex: "^eb"}, Weight: 5},
			{Signature: PathSignature{NextHopRegex: "^eb\\.1"}, Weight: 9},
		},
	}}})
	r := mkRoute("10.0.0.0/8", []uint32{1}, "D")
	r.NextHop = "eb.1"
	d := e.AssignWeights([]RouteAttrs{r}, 0)
	if !d.Applied || d.Weights[0] != 5 {
		t.Fatalf("want first entry's weight 5, got %+v", d)
	}
}

func TestAssignWeightsExpiration(t *testing.T) {
	e := evaluator(t, &Config{RouteAttribute: []RouteAttributeStatement{{
		Name:           "expiring",
		Destination:    Destination{Community: "D"},
		NextHopWeights: []NextHopWeight{{Signature: PathSignature{}, Weight: 7}},
		ExpiresAt:      1000,
	}}})
	r := mkRoute("10.0.0.0/8", []uint32{1}, "D")
	if d := e.AssignWeights([]RouteAttrs{r}, 999); !d.Applied {
		t.Fatal("statement should apply before expiry")
	}
	if d := e.AssignWeights([]RouteAttrs{r}, 1000); d.Applied {
		t.Fatal("statement should be invalid at expiry time")
	}
}

func TestAssignWeightsNoMatch(t *testing.T) {
	e := evaluator(t, &Config{RouteAttribute: []RouteAttributeStatement{{
		Name:           "narrow",
		Destination:    Destination{Community: "NOPE"},
		NextHopWeights: []NextHopWeight{{Signature: PathSignature{}, Weight: 2}},
	}}})
	r := mkRoute("10.0.0.0/8", []uint32{1}, "D")
	if d := e.AssignWeights([]RouteAttrs{r}, 0); d.Applied {
		t.Fatalf("unexpected apply: %+v", d)
	}
	if d := e.AssignWeights(nil, 0); d.Applied {
		t.Fatal("empty input must not apply")
	}
}

func TestAssignWeightsDefaultWeight(t *testing.T) {
	e := evaluator(t, &Config{RouteAttribute: []RouteAttributeStatement{{
		Name:          "def",
		Destination:   Destination{Community: "D"},
		DefaultWeight: 4,
		NextHopWeights: []NextHopWeight{
			{Signature: PathSignature{NextHopRegex: "^special"}, Weight: 10},
		},
	}}})
	a := mkRoute("10.0.0.0/8", []uint32{1}, "D")
	a.NextHop = "special.0"
	b := mkRoute("10.0.0.0/8", []uint32{2}, "D")
	b.NextHop = "plain.0"
	d := e.AssignWeights([]RouteAttrs{a, b}, 0)
	if d.Weights[0] != 10 || d.Weights[1] != 4 {
		t.Fatalf("weights = %v, want [10 4]", d.Weights)
	}
}

func TestAssignWeightsZeroWeightDrainsPath(t *testing.T) {
	// Weight 0 is the drain idiom: path selected but carries no traffic.
	e := evaluator(t, &Config{RouteAttribute: []RouteAttributeStatement{{
		Name:        "drain-eb0",
		Destination: Destination{Community: "D"},
		NextHopWeights: []NextHopWeight{
			{Signature: PathSignature{NextHopRegex: "^eb\\.0"}, Weight: 0},
		},
	}}})
	a := mkRoute("10.0.0.0/8", []uint32{1}, "D")
	a.NextHop = "eb.0"
	b := mkRoute("10.0.0.0/8", []uint32{2}, "D")
	b.NextHop = "eb.1"
	d := e.AssignWeights([]RouteAttrs{a, b}, 0)
	if d.Weights[0] != 0 || d.Weights[1] != 1 {
		t.Fatalf("weights = %v, want [0 1]", d.Weights)
	}
}
