package core

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// PathSignature identifies a path set: "a unique combination of standard BGP
// transitive attributes" (Section 4.3). All non-empty criteria must match.
// Attribute match criteria can be regular expressions, e.g.
// ASPathRegex "^12345" matches AS paths starting with ASN 12345 regardless
// of length, which equalizes paths of varying lengths from the same origin.
type PathSignature struct {
	// ASPathRegex matches against the space-separated AS path string
	// ("4200000000 4200000007"). Empty means any path.
	ASPathRegex string `json:"as_path_regex,omitempty"`

	// Communities that must all be present on the route.
	Communities []string `json:"communities,omitempty"`

	// PeerRegex matches the peer the route was learned from.
	PeerRegex string `json:"peer_regex,omitempty"`

	// NextHopRegex matches the route's next hop.
	NextHopRegex string `json:"next_hop_regex,omitempty"`

	// OriginASN, when non-zero, requires the route's originating ASN.
	OriginASN uint32 `json:"origin_asn,omitempty"`
}

// IsZero reports whether every criterion is empty (a zero signature matches
// every route).
func (s *PathSignature) IsZero() bool {
	return s.ASPathRegex == "" && len(s.Communities) == 0 &&
		s.PeerRegex == "" && s.NextHopRegex == "" && s.OriginASN == 0
}

// Key returns a canonical string identity for the signature, used for cache
// fingerprinting and debugging output.
func (s *PathSignature) Key() string {
	comms := append([]string(nil), s.Communities...)
	sort.Strings(comms)
	return fmt.Sprintf("aspath=%q comms=%q peer=%q nh=%q oasn=%d",
		s.ASPathRegex, strings.Join(comms, ","), s.PeerRegex, s.NextHopRegex, s.OriginASN)
}

// compiledSignature caches the compiled regexes of a PathSignature.
type compiledSignature struct {
	src     PathSignature
	asPath  *regexp.Regexp // nil when unset
	peer    *regexp.Regexp
	nextHop *regexp.Regexp
}

func compileSignature(s PathSignature) (*compiledSignature, error) {
	cs := &compiledSignature{src: s}
	var err error
	if s.ASPathRegex != "" {
		if cs.asPath, err = regexp.Compile(s.ASPathRegex); err != nil {
			return nil, fmt.Errorf("core: bad as_path_regex %q: %w", s.ASPathRegex, err)
		}
	}
	if s.PeerRegex != "" {
		if cs.peer, err = regexp.Compile(s.PeerRegex); err != nil {
			return nil, fmt.Errorf("core: bad peer_regex %q: %w", s.PeerRegex, err)
		}
	}
	if s.NextHopRegex != "" {
		if cs.nextHop, err = regexp.Compile(s.NextHopRegex); err != nil {
			return nil, fmt.Errorf("core: bad next_hop_regex %q: %w", s.NextHopRegex, err)
		}
	}
	return cs, nil
}

// matches reports whether the route satisfies every criterion.
func (cs *compiledSignature) matches(r *RouteAttrs) bool {
	if cs.asPath != nil && !cs.asPath.MatchString(r.ASPathString()) {
		return false
	}
	for _, c := range cs.src.Communities {
		if !r.HasCommunity(c) {
			return false
		}
	}
	if cs.peer != nil && !cs.peer.MatchString(r.Peer) {
		return false
	}
	if cs.nextHop != nil && !cs.nextHop.MatchString(r.NextHop) {
		return false
	}
	if cs.src.OriginASN != 0 && r.OriginASN() != cs.src.OriginASN {
		return false
	}
	return true
}

// Destination selects which prefixes a statement applies to. In production
// the common form is a community attached at the point of origin (Section
// 4.4, e.g. "BACKBONE_DEFAULT_ROUTE"); explicit prefixes are also supported.
type Destination struct {
	// Community selects all routes tagged with this community.
	Community string `json:"community,omitempty"`

	// Prefixes selects routes whose prefix equals one of these (string form
	// of netip.Prefix, e.g. "10.0.0.0/8").
	Prefixes []string `json:"prefixes,omitempty"`
}

// IsZero reports whether the destination selects nothing explicitly. A zero
// destination matches every route (an explicit "all" statement).
func (d *Destination) IsZero() bool { return d.Community == "" && len(d.Prefixes) == 0 }

// Matches reports whether a route falls under this destination.
func (d *Destination) Matches(r *RouteAttrs) bool {
	if d.IsZero() {
		return true
	}
	if d.Community != "" && r.HasCommunity(d.Community) {
		return true
	}
	p := r.Prefix.String()
	for _, want := range d.Prefixes {
		if p == want {
			return true
		}
	}
	return false
}
