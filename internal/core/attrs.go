// Package core implements the Route Planning Abstraction (RPA), the paper's
// primary contribution (Section 4). RPAs are plug-and-play constructs that
// influence — rather than replace — a BGP speaker's RIB computation:
//
//   - PathSelectionRPA overrides native path selection with a priority list
//     of operator-defined path sets (Figure 7a),
//   - RouteAttributeRPA prescribes WCMP weights a priori (Figure 7b),
//   - RouteFilterRPA gates which prefixes may be exchanged with which peers
//     (Figure 7c).
//
// The package is protocol-agnostic: it sees routes as RouteAttrs value
// snapshots and never talks to peers itself. The BGP daemon in internal/bgp
// invokes the evaluator at the pipeline stages of Figure 6.
package core

import (
	"hash/fnv"
	"net/netip"
	"strconv"
	"strings"
)

// Origin is the BGP ORIGIN attribute.
type Origin uint8

// Origin values in preference order (lower is preferred).
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

// String returns the RFC 4271 name of the origin.
func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "igp"
	case OriginEGP:
		return "egp"
	default:
		return "incomplete"
	}
}

// RouteAttrs is the attribute snapshot of one BGP path that RPAs match
// against. It carries the standard transitive attributes plus the
// emulation-level identifiers (peer and next-hop device names).
type RouteAttrs struct {
	Prefix      netip.Prefix
	ASPath      []uint32
	Communities []string // symbolic, e.g. "BACKBONE_DEFAULT_ROUTE"
	LocalPref   uint32
	MED         uint32
	Origin      Origin

	// NextHop and Peer are device names in the emulated fabric; in a real
	// deployment these would be addresses and peer descriptors.
	NextHop string
	Peer    string

	// LinkBandwidthGbps mirrors the link-bandwidth extended community used
	// for distributed WCMP (Section 2); zero means unset.
	LinkBandwidthGbps float64
}

// ASPathString renders the AS path as space-separated ASNs, the string form
// signature regexes match against (e.g. "as_path_regex=^12345").
func (a *RouteAttrs) ASPathString() string {
	if len(a.ASPath) == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(len(a.ASPath) * 11)
	for i, asn := range a.ASPath {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(uint64(asn), 10))
	}
	return b.String()
}

// HasCommunity reports whether the route carries the community.
func (a *RouteAttrs) HasCommunity(c string) bool {
	for _, got := range a.Communities {
		if got == c {
			return true
		}
	}
	return false
}

// OriginASN returns the last ASN on the path — the route's originator — or
// zero for an empty (locally originated) path.
func (a *RouteAttrs) OriginASN() uint32 {
	if len(a.ASPath) == 0 {
		return 0
	}
	return a.ASPath[len(a.ASPath)-1]
}

// Fingerprint returns a stable 64-bit hash of the attributes that signature
// matching reads. Two routes with equal fingerprints produce identical
// match results, which is what makes the statement cache (Table 2) sound.
func (a *RouteAttrs) Fingerprint() uint64 {
	h := fnv.New64a()
	write := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	write(a.Prefix.String())
	write(a.ASPathString())
	for _, c := range a.Communities {
		write(c)
	}
	write(a.NextHop)
	write(a.Peer)
	var buf [8]byte
	putU32 := func(v uint32) {
		buf[0] = byte(v >> 24)
		buf[1] = byte(v >> 16)
		buf[2] = byte(v >> 8)
		buf[3] = byte(v)
		h.Write(buf[:4])
	}
	putU32(a.LocalPref)
	putU32(a.MED)
	putU32(uint32(a.Origin))
	putU32(uint32(a.LinkBandwidthGbps * 1000))
	return h.Sum64()
}
