package core

import "testing"

func TestExplainSelectionChoosesSet(t *testing.T) {
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:        "stmt",
		Destination: Destination{Community: "D"},
		PathSets: []PathSet{
			{Name: "first", Signature: PathSignature{NextHopRegex: "^never"}},
			{Name: "second", Signature: PathSignature{NextHopRegex: "^fadu"}, MinNextHop: MinNextHop{Count: 2}},
		},
	}}})
	r := func(nh string) RouteAttrs {
		x := mkRoute("10.0.0.0/8", []uint32{1}, "D")
		x.NextHop = nh
		return x
	}
	ex := e.ExplainSelection([]RouteAttrs{r("fadu.0"), r("fadu.1"), r("eb.0")}, 3)
	if ex.Statement != "stmt" || ex.UsedNative {
		t.Fatalf("explanation = %+v", ex)
	}
	if len(ex.Sets) != 2 {
		t.Fatalf("sets = %+v", ex.Sets)
	}
	if ex.Sets[0].Satisfied || len(ex.Sets[0].MatchedRoutes) != 0 {
		t.Errorf("set 0 = %+v, want unsatisfied", ex.Sets[0])
	}
	if !ex.Sets[1].Satisfied || len(ex.Sets[1].MatchedRoutes) != 2 || ex.Sets[1].DistinctNextHops != 2 {
		t.Errorf("set 1 = %+v", ex.Sets[1])
	}
	if ex.ChosenSet != "second" {
		t.Errorf("ChosenSet = %q", ex.ChosenSet)
	}
	// Explanation must agree with the actual selection.
	d := e.SelectPaths([]RouteAttrs{r("fadu.0"), r("fadu.1"), r("eb.0")}, 3)
	if d.MatchedSet != ex.ChosenSet {
		t.Errorf("SelectPaths chose %q, ExplainSelection %q", d.MatchedSet, ex.ChosenSet)
	}
}

func TestExplainSelectionNativeAndEmpty(t *testing.T) {
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:                "protect",
		Destination:         Destination{Community: "D"},
		BgpNativeMinNextHop: MinNextHop{Percent: 75},
		ExpectedNextHops:    8,
	}}})
	r := mkRoute("10.0.0.0/8", []uint32{1}, "D")
	ex := e.ExplainSelection([]RouteAttrs{r}, 2)
	if !ex.UsedNative || ex.Statement != "protect" {
		t.Fatalf("explanation = %+v", ex)
	}
	if ex.Baseline != 8 {
		t.Errorf("Baseline = %d, want ExpectedNextHops 8", ex.Baseline)
	}
	if !ex.Native.Present || ex.Native.MinNextHop.Percent != 75 {
		t.Errorf("Native = %+v", ex.Native)
	}
	// No candidates / no matching statement.
	if ex := e.ExplainSelection(nil, 1); !ex.UsedNative || ex.Statement != "" {
		t.Errorf("empty explanation = %+v", ex)
	}
	other := mkRoute("10.0.0.0/8", []uint32{1}, "X")
	if ex := e.ExplainSelection([]RouteAttrs{other}, 1); ex.Statement != "" {
		t.Errorf("unmatched explanation = %+v", ex)
	}
}

func TestNativeConstraintBaseline(t *testing.T) {
	nc := NativeConstraint{Expected: 4}
	if nc.Baseline(7) != 4 {
		t.Error("Expected should override observed")
	}
	nc.Expected = 0
	if nc.Baseline(7) != 7 {
		t.Error("observed should be used without Expected")
	}
}
