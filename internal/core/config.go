package core

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Config is the full RPA configuration deployed to one switch: the union of
// the three primitive kinds of Figure 7. This is the payload the Centralium
// controller generates per switch and the Switch Agent pushes over RPC.
type Config struct {
	// Version increases monotonically with each generation; the agent uses
	// it to detect stragglers (Section 5.1's consistency guarantee).
	Version int64 `json:"version"`

	PathSelection  []PathSelectionStatement  `json:"path_selection,omitempty"`
	RouteAttribute []RouteAttributeStatement `json:"route_attribute,omitempty"`
	RouteFilter    []RouteFilterStatement    `json:"route_filter,omitempty"`
}

// IsEmpty reports whether the config carries no statements.
func (c *Config) IsEmpty() bool {
	return len(c.PathSelection) == 0 && len(c.RouteAttribute) == 0 && len(c.RouteFilter) == 0
}

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	data, err := json.Marshal(c)
	if err != nil {
		panic("core: config not marshalable: " + err.Error())
	}
	var out Config
	if err := json.Unmarshal(data, &out); err != nil {
		panic("core: config round-trip failed: " + err.Error())
	}
	return &out
}

// Marshal renders the config as indented JSON — the deployment payload and
// also what Table 3's "RPA LOC" column counts.
func (c *Config) Marshal() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Unmarshal parses a config previously produced by Marshal.
func Unmarshal(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("core: parse config: %w", err)
	}
	return &c, nil
}

// LOC counts the lines of the config's canonical text form, the measure the
// paper reports per migration in Table 3.
func (c *Config) LOC() int {
	data, err := c.Marshal()
	if err != nil {
		return 0
	}
	return strings.Count(string(data), "\n") + 1
}

// Validate checks structural validity: names present and unique within each
// kind, weights non-negative, regexes compile, prefix rules parse.
func (c *Config) Validate() error {
	seen := make(map[string]bool)
	for i := range c.PathSelection {
		st := &c.PathSelection[i]
		if st.Name == "" {
			return fmt.Errorf("core: path-selection statement %d has no name", i)
		}
		if seen["ps/"+st.Name] {
			return fmt.Errorf("core: duplicate path-selection statement %q", st.Name)
		}
		seen["ps/"+st.Name] = true
		for j := range st.PathSets {
			if _, err := compileSignature(st.PathSets[j].Signature); err != nil {
				return fmt.Errorf("core: statement %q set %d: %w", st.Name, j, err)
			}
			m := st.PathSets[j].MinNextHop
			if m.Count < 0 || m.Percent < 0 || m.Percent > 100 {
				return fmt.Errorf("core: statement %q set %d: invalid MinNextHop %+v", st.Name, j, m)
			}
		}
		m := st.BgpNativeMinNextHop
		if m.Count < 0 || m.Percent < 0 || m.Percent > 100 {
			return fmt.Errorf("core: statement %q: invalid BgpNativeMinNextHop %+v", st.Name, m)
		}
		if st.ExpectedNextHops < 0 {
			return fmt.Errorf("core: statement %q: negative ExpectedNextHops", st.Name)
		}
	}
	for i := range c.RouteAttribute {
		st := &c.RouteAttribute[i]
		if st.Name == "" {
			return fmt.Errorf("core: route-attribute statement %d has no name", i)
		}
		if seen["ra/"+st.Name] {
			return fmt.Errorf("core: duplicate route-attribute statement %q", st.Name)
		}
		seen["ra/"+st.Name] = true
		for j := range st.NextHopWeights {
			if st.NextHopWeights[j].Weight < 0 {
				return fmt.Errorf("core: route-attribute %q weight %d is negative", st.Name, j)
			}
			if _, err := compileSignature(st.NextHopWeights[j].Signature); err != nil {
				return fmt.Errorf("core: route-attribute %q weight %d: %w", st.Name, j, err)
			}
		}
	}
	for i := range c.RouteFilter {
		st := &c.RouteFilter[i]
		if st.Name == "" {
			return fmt.Errorf("core: route-filter statement %d has no name", i)
		}
		if seen["rf/"+st.Name] {
			return fmt.Errorf("core: duplicate route-filter statement %q", st.Name)
		}
		seen["rf/"+st.Name] = true
		if _, err := compileFilter(st); err != nil {
			return err
		}
	}
	return nil
}

// Merge returns a new config containing the statements of both, with c's
// statements at higher priority (earlier). Orthogonal RPAs influence
// exclusive prefix sets (Section 5.3 footnote), so concatenation is the
// production composition rule. The result takes the higher version.
func (c *Config) Merge(other *Config) *Config {
	out := c.Clone()
	o := other.Clone()
	out.PathSelection = append(out.PathSelection, o.PathSelection...)
	out.RouteAttribute = append(out.RouteAttribute, o.RouteAttribute...)
	out.RouteFilter = append(out.RouteFilter, o.RouteFilter...)
	if o.Version > out.Version {
		out.Version = o.Version
	}
	return out
}
