package core

import (
	"strings"
	"testing"
)

func TestAllowRouteIngressAllowList(t *testing.T) {
	e := evaluator(t, &Config{RouteFilter: []RouteFilterStatement{{
		Name:          "dc-boundary",
		PeerSignature: "^eb\\.",
		Ingress: &PrefixFilter{Rules: []PrefixRule{
			{Prefix: "0.0.0.0/0"}, // exactly the default route
			{Prefix: "10.0.0.0/8", MinMaskLength: 8, MaxMaskLength: 24}, // aggregates only
		}},
	}}})

	def := mkRoute("0.0.0.0/0", []uint32{1})
	agg := mkRoute("10.1.0.0/16", []uint32{1})
	tooSpecific := mkRoute("10.1.2.0/25", []uint32{1})
	outside := mkRoute("192.168.0.0/16", []uint32{1})

	if !e.AllowRoute(&def, "eb.0", Ingress) {
		t.Error("default route denied")
	}
	if !e.AllowRoute(&agg, "eb.0", Ingress) {
		t.Error("aggregate denied")
	}
	if e.AllowRoute(&tooSpecific, "eb.0", Ingress) {
		t.Error("more-specific /25 leaked through max mask 24")
	}
	if e.AllowRoute(&outside, "eb.0", Ingress) {
		t.Error("out-of-range prefix allowed")
	}
	// Filter only applies to eb.* peers.
	if !e.AllowRoute(&outside, "fsw.0", Ingress) {
		t.Error("filter applied to non-matching peer")
	}
	// Egress unconstrained by this statement.
	if !e.AllowRoute(&outside, "eb.0", Egress) {
		t.Error("egress constrained without an egress filter")
	}
}

func TestAllowRouteEgress(t *testing.T) {
	e := evaluator(t, &Config{RouteFilter: []RouteFilterStatement{{
		Name: "egress-only",
		Egress: &PrefixFilter{Rules: []PrefixRule{
			{Prefix: "10.0.0.0/8", MinMaskLength: 8, MaxMaskLength: 16},
		}},
	}}})
	ok := mkRoute("10.5.0.0/16", []uint32{1})
	bad := mkRoute("10.5.1.0/24", []uint32{1})
	if !e.AllowRoute(&ok, "anyone", Egress) {
		t.Error("/16 denied")
	}
	if e.AllowRoute(&bad, "anyone", Egress) {
		t.Error("/24 allowed beyond max mask")
	}
}

func TestAllowRouteNoStatements(t *testing.T) {
	e := evaluator(t, &Config{})
	r := mkRoute("10.0.0.0/8", []uint32{1})
	if !e.AllowRoute(&r, "x", Ingress) || !e.AllowRoute(&r, "x", Egress) {
		t.Error("no statements must allow everything")
	}
}

func TestAllowRouteEmptyRuleListDeniesAll(t *testing.T) {
	e := evaluator(t, &Config{RouteFilter: []RouteFilterStatement{{
		Name:    "deny-all-in",
		Ingress: &PrefixFilter{},
	}}})
	r := mkRoute("10.0.0.0/8", []uint32{1})
	if e.AllowRoute(&r, "x", Ingress) {
		t.Error("empty allow list must deny")
	}
}

func TestFilterValidation(t *testing.T) {
	bad := []Config{
		{RouteFilter: []RouteFilterStatement{{Name: "b1", PeerSignature: "("}}},
		{RouteFilter: []RouteFilterStatement{{Name: "b2", Ingress: &PrefixFilter{Rules: []PrefixRule{{Prefix: "not-a-prefix"}}}}}},
		{RouteFilter: []RouteFilterStatement{{Name: "b3", Ingress: &PrefixFilter{Rules: []PrefixRule{{Prefix: "10.0.0.0/8", MinMaskLength: 20, MaxMaskLength: 16}}}}}},
		{RouteFilter: []RouteFilterStatement{{Name: "b4", Ingress: &PrefixFilter{Rules: []PrefixRule{{Prefix: "10.0.0.0/8", MinMaskLength: 4, MaxMaskLength: 16}}}}}},
	}
	for i, cfg := range bad {
		if _, err := NewEvaluator(&cfg); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Ingress.String() != "ingress" || Egress.String() != "egress" {
		t.Error("Direction.String wrong")
	}
}

func TestMultipleFilterStatementsAllApply(t *testing.T) {
	// Two statements both matching a peer: a route must pass both.
	e := evaluator(t, &Config{RouteFilter: []RouteFilterStatement{
		{Name: "f1", Ingress: &PrefixFilter{Rules: []PrefixRule{{Prefix: "10.0.0.0/8", MinMaskLength: 8, MaxMaskLength: 24}}}},
		{Name: "f2", Ingress: &PrefixFilter{Rules: []PrefixRule{{Prefix: "10.0.0.0/8", MinMaskLength: 8, MaxMaskLength: 16}}}},
	}})
	r16 := mkRoute("10.1.0.0/16", []uint32{1})
	r20 := mkRoute("10.1.16.0/20", []uint32{1})
	if !e.AllowRoute(&r16, "p", Ingress) {
		t.Error("/16 should pass both filters")
	}
	if e.AllowRoute(&r20, "p", Ingress) {
		t.Error("/20 passes f1 but must fail f2")
	}
}

func TestFilterErrorMessagesName(t *testing.T) {
	cfg := Config{RouteFilter: []RouteFilterStatement{{
		Name:    "my-filter",
		Ingress: &PrefixFilter{Rules: []PrefixRule{{Prefix: "bogus"}}},
	}}}
	_, err := NewEvaluator(&cfg)
	if err == nil || !strings.Contains(err.Error(), "my-filter") {
		t.Errorf("error should name the statement: %v", err)
	}
}
