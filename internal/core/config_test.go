package core

import (
	"testing"
	"testing/quick"
)

func sampleConfig() *Config {
	return &Config{
		Version: 3,
		PathSelection: []PathSelectionStatement{{
			Name:        "ps1",
			Destination: Destination{Community: "BACKBONE_DEFAULT_ROUTE"},
			PathSets: []PathSet{{
				Name:      "backbone",
				Signature: PathSignature{ASPathRegex: "64512$"},
			}},
			BgpNativeMinNextHop: MinNextHop{Percent: 75},
		}},
		RouteAttribute: []RouteAttributeStatement{{
			Name:           "ra1",
			Destination:    Destination{Community: "TE"},
			NextHopWeights: []NextHopWeight{{Signature: PathSignature{NextHopRegex: "^eb"}, Weight: 2}},
		}},
		RouteFilter: []RouteFilterStatement{{
			Name:    "rf1",
			Ingress: &PrefixFilter{Rules: []PrefixRule{{Prefix: "10.0.0.0/8", MinMaskLength: 8, MaxMaskLength: 24}}},
		}},
	}
}

func TestConfigRoundTrip(t *testing.T) {
	c := sampleConfig()
	data, err := c.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Version != c.Version {
		t.Errorf("Version = %d, want %d", got.Version, c.Version)
	}
	if len(got.PathSelection) != 1 || got.PathSelection[0].Name != "ps1" {
		t.Errorf("PathSelection lost in round trip: %+v", got.PathSelection)
	}
	if got.PathSelection[0].BgpNativeMinNextHop.Percent != 75 {
		t.Error("MinNextHop lost")
	}
	if _, err := Unmarshal([]byte("{bogus")); err == nil {
		t.Error("Unmarshal of garbage succeeded")
	}
}

func TestConfigClone(t *testing.T) {
	c := sampleConfig()
	cl := c.Clone()
	cl.PathSelection[0].Name = "changed"
	cl.RouteAttribute[0].NextHopWeights[0].Weight = 99
	if c.PathSelection[0].Name != "ps1" {
		t.Error("Clone shares PathSelection backing array")
	}
	if c.RouteAttribute[0].NextHopWeights[0].Weight != 2 {
		t.Error("Clone shares NextHopWeights")
	}
}

func TestConfigLOC(t *testing.T) {
	c := sampleConfig()
	loc := c.LOC()
	if loc < 10 {
		t.Errorf("LOC = %d, implausibly small", loc)
	}
	empty := &Config{}
	if empty.LOC() >= loc {
		t.Error("empty config should have fewer lines")
	}
	if !empty.IsEmpty() || c.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []*Config{
		{PathSelection: []PathSelectionStatement{{Name: ""}}},
		{PathSelection: []PathSelectionStatement{{Name: "a"}, {Name: "a"}}},
		{PathSelection: []PathSelectionStatement{{Name: "a", PathSets: []PathSet{{Signature: PathSignature{ASPathRegex: "("}}}}}},
		{PathSelection: []PathSelectionStatement{{Name: "a", BgpNativeMinNextHop: MinNextHop{Percent: 150}}}},
		{PathSelection: []PathSelectionStatement{{Name: "a", PathSets: []PathSet{{MinNextHop: MinNextHop{Count: -1}}}}}},
		{RouteAttribute: []RouteAttributeStatement{{Name: ""}}},
		{RouteAttribute: []RouteAttributeStatement{{Name: "r", NextHopWeights: []NextHopWeight{{Weight: -1}}}}},
		{RouteAttribute: []RouteAttributeStatement{{Name: "r"}, {Name: "r"}}},
		{RouteFilter: []RouteFilterStatement{{Name: ""}}},
		{RouteFilter: []RouteFilterStatement{{Name: "f"}, {Name: "f"}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
	if err := sampleConfig().Validate(); err != nil {
		t.Errorf("sample config invalid: %v", err)
	}
}

func TestConfigMerge(t *testing.T) {
	a := sampleConfig()
	b := &Config{
		Version: 9,
		PathSelection: []PathSelectionStatement{{
			Name:        "ps2",
			Destination: Destination{Community: "OTHER"},
		}},
	}
	m := a.Merge(b)
	if len(m.PathSelection) != 2 {
		t.Fatalf("merged PathSelection = %d statements, want 2", len(m.PathSelection))
	}
	if m.PathSelection[0].Name != "ps1" || m.PathSelection[1].Name != "ps2" {
		t.Error("merge order wrong: base statements must come first")
	}
	if m.Version != 9 {
		t.Errorf("merged Version = %d, want 9", m.Version)
	}
	// Merge must not alias either input.
	m.PathSelection[0].Name = "x"
	if a.PathSelection[0].Name != "ps1" {
		t.Error("Merge aliases input a")
	}
}

func TestSignatureKeyCanonical(t *testing.T) {
	s1 := PathSignature{Communities: []string{"b", "a"}}
	s2 := PathSignature{Communities: []string{"a", "b"}}
	if s1.Key() != s2.Key() {
		t.Error("Key not canonical over community order")
	}
	if !(&PathSignature{}).IsZero() {
		t.Error("zero signature not IsZero")
	}
	s := PathSignature{ASPathRegex: "^1"}
	if s.IsZero() {
		t.Error("nonzero signature IsZero")
	}
}

func TestConfigRoundTripQuick(t *testing.T) {
	// Property: Marshal/Unmarshal preserves version and statement counts
	// for arbitrary small configs.
	f := func(version int64, nPS, nRA uint8) bool {
		c := &Config{Version: version}
		for i := 0; i < int(nPS%4); i++ {
			c.PathSelection = append(c.PathSelection, PathSelectionStatement{
				Name: "ps" + string(rune('a'+i)),
			})
		}
		for i := 0; i < int(nRA%4); i++ {
			c.RouteAttribute = append(c.RouteAttribute, RouteAttributeStatement{
				Name: "ra" + string(rune('a'+i)),
			})
		}
		data, err := c.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return got.Version == c.Version &&
			len(got.PathSelection) == len(c.PathSelection) &&
			len(got.RouteAttribute) == len(c.RouteAttribute)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCacheBehavior(t *testing.T) {
	c := NewCache(4)
	k := CacheKey{Statement: "s", Set: 0, Route: 42}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, true)
	if v, ok := c.Get(k); !ok || !v {
		t.Fatal("cached value lost")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d, want 1/1", hits, misses)
	}
	// Overflow clears.
	for i := 0; i < 10; i++ {
		c.Put(CacheKey{Statement: "s", Set: i, Route: uint64(i)}, false)
	}
	if c.Len() > 4 {
		t.Errorf("cache exceeded bound: %d", c.Len())
	}
	c.Clear()
	if c.Len() != 0 {
		t.Error("Clear left entries")
	}
	// Disabled cache never stores.
	c.SetEnabled(false)
	c.Put(k, true)
	if _, ok := c.Get(k); ok {
		t.Error("disabled cache returned a hit")
	}
	c.SetEnabled(true)
	if c.Len() != 0 {
		t.Error("re-enable kept stale entries")
	}
	if NewCache(0).max != defaultCacheSize {
		t.Error("default size not applied")
	}
}
