package core

// NextHopWeight maps a path set (by signature) to a relative WCMP weight
// (Figure 7b).
type NextHopWeight struct {
	Signature PathSignature `json:"signature"`
	Weight    int           `json:"weight"`
}

// RouteAttributeStatement prescribes the desired traffic distribution ratio
// among paths toward a destination, a priori and asynchronously (Section
// 4.3). When it applies, the switch ignores peer-advertised link-bandwidth
// and uses these weights, which eliminates the transient next-hop-group
// explosion of Section 3.4.
type RouteAttributeStatement struct {
	Name        string      `json:"name"`
	Destination Destination `json:"destination"`

	NextHopWeights []NextHopWeight `json:"next_hop_weights"`

	// DefaultWeight applies to selected routes not matched by any entry;
	// zero means such routes keep weight 1.
	DefaultWeight int `json:"default_weight,omitempty"`

	// ExpiresAt invalidates the statement at the given emulation clock
	// value (nanoseconds); BGP then falls back to its native distribution
	// (ECMP or distributed WCMP). Zero means never.
	ExpiresAt int64 `json:"expires_at,omitempty"`
}

type evalAttrStatement struct {
	src  *RouteAttributeStatement
	sigs []*compiledSignature
}

// WeightDecision is the outcome of Route Attribute evaluation for one
// prefix's selected routes.
type WeightDecision struct {
	// Applied is false when no statement matched (or it expired); the
	// caller uses its native distribution.
	Applied bool

	// Weights has one entry per input route when Applied.
	Weights []int

	// Statement names the statement applied.
	Statement string
}

// AssignWeights evaluates Route Attribute RPAs over the selected routes of
// one prefix at emulation time now. Routes must share a prefix; the first
// unexpired statement whose destination matches route 0 governs.
func (e *Evaluator) AssignWeights(routes []RouteAttrs, now int64) WeightDecision {
	if len(routes) == 0 {
		return WeightDecision{}
	}
	for _, es := range e.routeAtt {
		if es.src.ExpiresAt != 0 && now >= es.src.ExpiresAt {
			continue
		}
		if !es.src.Destination.Matches(&routes[0]) {
			continue
		}
		weights := make([]int, len(routes))
		for ri := range routes {
			w := es.src.DefaultWeight
			if w <= 0 {
				w = 1
			}
			for si, cs := range es.sigs {
				if cs.matches(&routes[ri]) {
					w = es.src.NextHopWeights[si].Weight
					break
				}
			}
			if w < 0 {
				w = 0
			}
			weights[ri] = w
		}
		return WeightDecision{Applied: true, Weights: weights, Statement: es.src.Name}
	}
	return WeightDecision{}
}
