package core

import (
	"fmt"
	"net/netip"
	"regexp"
)

// PrefixRule allows prefixes contained in Prefix whose mask length lies in
// [MinMaskLength, MaxMaskLength]. MaxMaskLength guards against leaking more
// specifics that would overload switch forwarding resources (Section 4.3).
type PrefixRule struct {
	Prefix        string `json:"prefix"` // e.g. "10.0.0.0/8"
	MinMaskLength int    `json:"min_mask_length,omitempty"`
	MaxMaskLength int    `json:"max_mask_length,omitempty"` // 0 = Prefix.Bits()
}

// PrefixFilter is an allow list: a route passes if any rule admits it. An
// empty rule list denies everything (the filter is an explicit allow list).
type PrefixFilter struct {
	Rules []PrefixRule `json:"rules"`
}

// RouteFilterStatement gates route exchange with peers matched by
// PeerSignature (Figure 7c). Ingress applies to routes received; Egress to
// routes advertised. A nil filter leaves that direction unconstrained.
type RouteFilterStatement struct {
	Name          string        `json:"name"`
	PeerSignature string        `json:"peer_signature"` // regex on peer name; empty = all peers
	Ingress       *PrefixFilter `json:"ingress,omitempty"`
	Egress        *PrefixFilter `json:"egress,omitempty"`
}

type compiledRule struct {
	prefix   netip.Prefix
	min, max int
}

type compiledFilter struct {
	rules []compiledRule
}

type evalFilterStatement struct {
	src     *RouteFilterStatement
	peer    *regexp.Regexp // nil = all peers
	ingress *compiledFilter
	egress  *compiledFilter
}

func compilePrefixFilter(f *PrefixFilter, stmt string) (*compiledFilter, error) {
	if f == nil {
		return nil, nil
	}
	cf := &compiledFilter{}
	for i, r := range f.Rules {
		p, err := netip.ParsePrefix(r.Prefix)
		if err != nil {
			return nil, fmt.Errorf("core: filter %q rule %d: %w", stmt, i, err)
		}
		min, max := r.MinMaskLength, r.MaxMaskLength
		if min == 0 {
			min = p.Bits()
		}
		if max == 0 {
			max = p.Bits()
		}
		if min > max {
			return nil, fmt.Errorf("core: filter %q rule %d: min mask %d > max mask %d", stmt, i, min, max)
		}
		if min < p.Bits() {
			return nil, fmt.Errorf("core: filter %q rule %d: min mask %d shorter than prefix /%d", stmt, i, min, p.Bits())
		}
		cf.rules = append(cf.rules, compiledRule{prefix: p.Masked(), min: min, max: max})
	}
	return cf, nil
}

func compileFilter(st *RouteFilterStatement) (*evalFilterStatement, error) {
	es := &evalFilterStatement{src: st}
	var err error
	if st.PeerSignature != "" {
		if es.peer, err = regexp.Compile(st.PeerSignature); err != nil {
			return nil, fmt.Errorf("core: filter %q peer signature: %w", st.Name, err)
		}
	}
	if es.ingress, err = compilePrefixFilter(st.Ingress, st.Name); err != nil {
		return nil, err
	}
	if es.egress, err = compilePrefixFilter(st.Egress, st.Name); err != nil {
		return nil, err
	}
	return es, nil
}

func (cf *compiledFilter) allows(p netip.Prefix) bool {
	for _, r := range cf.rules {
		if r.prefix.Contains(p.Addr()) && p.Bits() >= r.min && p.Bits() <= r.max {
			return true
		}
	}
	return false
}

// Direction distinguishes ingress from egress filtering.
type Direction int

// Filtering directions.
const (
	Ingress Direction = iota
	Egress
)

// String returns "ingress" or "egress".
func (d Direction) String() string {
	if d == Ingress {
		return "ingress"
	}
	return "egress"
}

// AllowRoute applies Route Filter RPAs: it reports whether the route may be
// exchanged with the peer in the given direction. Statements whose peer
// signature does not match the peer are skipped; a statement with no filter
// configured for the direction allows the route. With no applicable
// statement at all, the route is allowed (RPA augments, never implicitly
// blocks).
func (e *Evaluator) AllowRoute(r *RouteAttrs, peer string, dir Direction) bool {
	for _, es := range e.filters {
		if es.peer != nil && !es.peer.MatchString(peer) {
			continue
		}
		var cf *compiledFilter
		if dir == Ingress {
			cf = es.ingress
		} else {
			cf = es.egress
		}
		if cf == nil {
			continue
		}
		if !cf.allows(r.Prefix) {
			return false
		}
	}
	return true
}
