package core

// Explanation tooling for Section 7.2's debuggability needs: operators must
// be able to see, for a given route, which statement governs it, which path
// set finally matched, and why the earlier sets did not.

// SetExplanation reports one path set's evaluation.
type SetExplanation struct {
	Name             string
	MatchedRoutes    []int // candidate indices the signature matched
	DistinctNextHops int
	RequiredNextHops int
	Satisfied        bool
}

// Explanation reports a full Path Selection evaluation for one prefix.
type Explanation struct {
	// Statement names the governing statement; empty when no statement's
	// destination matches (pure native selection).
	Statement string
	// Baseline is the effective full-health next-hop count used for
	// percentage thresholds.
	Baseline int
	// Sets explains every path set walked, in priority order.
	Sets []SetExplanation
	// ChosenSet names the set that won; empty on native fallback.
	ChosenSet string
	// UsedNative is true when selection fell back to native BGP.
	UsedNative bool
	// Native describes the native-fallback constraint, if any.
	Native NativeConstraint
}

// ExplainSelection runs the same walk as SelectPaths but records every
// intermediate decision. It does not touch the cache (debug reads must not
// perturb measured state).
func (e *Evaluator) ExplainSelection(candidates []RouteAttrs, baseline int) Explanation {
	out := Explanation{UsedNative: true, Baseline: baseline}
	if len(candidates) == 0 {
		return out
	}
	es := e.findStatement(&candidates[0])
	if es == nil {
		return out
	}
	out.Statement = es.src.Name
	if es.src.ExpectedNextHops > 0 {
		out.Baseline = es.src.ExpectedNextHops
	}
	out.Native = e.NativeConstraintFor(&candidates[0])
	for si, cs := range es.sets {
		se := SetExplanation{Name: setName(es.src.PathSets[si], si)}
		for ri := range candidates {
			if cs.matches(&candidates[ri]) {
				se.MatchedRoutes = append(se.MatchedRoutes, ri)
			}
		}
		se.DistinctNextHops = distinctNextHops(candidates, se.MatchedRoutes)
		se.RequiredNextHops = es.src.PathSets[si].MinNextHop.Required(out.Baseline)
		se.Satisfied = len(se.MatchedRoutes) > 0 && se.DistinctNextHops >= se.RequiredNextHops
		out.Sets = append(out.Sets, se)
		if se.Satisfied && out.ChosenSet == "" {
			out.ChosenSet = se.Name
			out.UsedNative = false
		}
	}
	return out
}
