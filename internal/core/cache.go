package core

// CacheKey identifies one (statement, path set, route) match computation.
type CacheKey struct {
	Statement string
	Set       int
	Route     uint64 // RouteAttrs.Fingerprint
}

// defaultCacheSize bounds the match cache. Production switches hold on the
// order of 10k-100k routes; the cap keeps worst-case memory predictable.
const defaultCacheSize = 1 << 16

// Cache memoizes signature match results per route fingerprint. "Once
// evaluated, the matched RPA statement is cached so future re-evaluation on
// the same route is much faster" (Section 6.2, Table 2). Eviction is
// wholesale clear on overflow — simple, and re-warming is cheap relative to
// convergence timescales.
type Cache struct {
	max     int
	entries map[CacheKey]bool
	hits    uint64
	misses  uint64
	enabled bool
}

// NewCache returns a cache bounded to max entries (values <= 0 get the
// default bound).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = defaultCacheSize
	}
	return &Cache{max: max, entries: make(map[CacheKey]bool), enabled: true}
}

// SetEnabled toggles the cache (the Table 2 "w/o cache" row disables it).
func (c *Cache) SetEnabled(on bool) {
	c.enabled = on
	if !on {
		c.Clear()
	}
}

// Get returns the cached match result.
func (c *Cache) Get(k CacheKey) (v, ok bool) {
	if !c.enabled {
		c.misses++
		return false, false
	}
	v, ok = c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put stores a match result.
func (c *Cache) Put(k CacheKey, v bool) {
	if !c.enabled {
		return
	}
	if len(c.entries) >= c.max {
		c.entries = make(map[CacheKey]bool, c.max/4)
	}
	c.entries[k] = v
}

// Clear drops all entries but keeps hit/miss counters.
func (c *Cache) Clear() { c.entries = make(map[CacheKey]bool) }

// Len reports the number of cached results.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }
