package core

import "sort"

// CacheKey identifies one (statement, path set, route) match computation.
type CacheKey struct {
	Statement string
	Set       int
	Route     uint64 // RouteAttrs.Fingerprint
}

// defaultCacheSize bounds the match cache. Production switches hold on the
// order of 10k-100k routes; the cap keeps worst-case memory predictable.
const defaultCacheSize = 1 << 16

// Cache memoizes signature match results per route fingerprint. "Once
// evaluated, the matched RPA statement is cached so future re-evaluation on
// the same route is much faster" (Section 6.2, Table 2). Eviction is
// wholesale clear on overflow — simple, and re-warming is cheap relative to
// convergence timescales.
type Cache struct {
	max     int
	entries map[CacheKey]bool
	hits    uint64
	misses  uint64
	enabled bool
}

// NewCache returns a cache bounded to max entries (values <= 0 get the
// default bound).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = defaultCacheSize
	}
	return &Cache{max: max, entries: make(map[CacheKey]bool), enabled: true}
}

// SetEnabled toggles the cache (the Table 2 "w/o cache" row disables it).
func (c *Cache) SetEnabled(on bool) {
	c.enabled = on
	if !on {
		c.Clear()
	}
}

// Get returns the cached match result.
func (c *Cache) Get(k CacheKey) (v, ok bool) {
	if !c.enabled {
		c.misses++
		return false, false
	}
	v, ok = c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put stores a match result.
func (c *Cache) Put(k CacheKey, v bool) {
	if !c.enabled {
		return
	}
	if len(c.entries) >= c.max {
		c.entries = make(map[CacheKey]bool, c.max/4)
	}
	c.entries[k] = v
}

// Clear drops all entries but keeps hit/miss counters.
func (c *Cache) Clear() { c.entries = make(map[CacheKey]bool) }

// Len reports the number of cached results.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// CacheEntry is one memoized match result.
type CacheEntry struct {
	Key   CacheKey
	Value bool
}

// CacheState is the complete serializable state of a Cache, entries sorted
// by key so identical caches export identical states.
type CacheState struct {
	Max     int
	Enabled bool
	Hits    uint64
	Misses  uint64
	Entries []CacheEntry
}

// ExportState captures the cache for checkpointing; the result shares no
// memory with the cache.
func (c *Cache) ExportState() CacheState {
	st := CacheState{Max: c.max, Enabled: c.enabled, Hits: c.hits, Misses: c.misses}
	if len(c.entries) > 0 {
		st.Entries = make([]CacheEntry, 0, len(c.entries))
		for k, v := range c.entries {
			st.Entries = append(st.Entries, CacheEntry{Key: k, Value: v})
		}
		sort.Slice(st.Entries, func(i, j int) bool {
			a, b := st.Entries[i].Key, st.Entries[j].Key
			if a.Statement != b.Statement {
				return a.Statement < b.Statement
			}
			if a.Set != b.Set {
				return a.Set < b.Set
			}
			return a.Route < b.Route
		})
	}
	return st
}

// RestoreState replaces the cache's contents and counters with a
// checkpointed state, so a restored speaker's cache behaves (hits, misses,
// evictions) exactly like the uninterrupted one.
func (c *Cache) RestoreState(st CacheState) {
	if st.Max > 0 {
		c.max = st.Max
	}
	c.enabled = st.Enabled
	c.hits = st.Hits
	c.misses = st.Misses
	c.entries = make(map[CacheKey]bool, len(st.Entries))
	for _, e := range st.Entries {
		c.entries[e.Key] = e.Value
	}
}
