package core

import (
	"testing"
)

// evaluator compiles a config or fails the test.
func evaluator(t *testing.T, cfg *Config) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(cfg)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	return e
}

func TestMinNextHopRequired(t *testing.T) {
	tests := []struct {
		m        MinNextHop
		baseline int
		want     int
	}{
		{MinNextHop{}, 10, 0},
		{MinNextHop{Count: 3}, 10, 3},
		{MinNextHop{Percent: 75}, 8, 6},
		{MinNextHop{Percent: 75}, 10, 8},           // ceil(7.5)
		{MinNextHop{Count: 9, Percent: 75}, 10, 9}, // max of both
		{MinNextHop{Count: 2, Percent: 75}, 10, 8}, // percent dominates
		{MinNextHop{Percent: 100}, 4, 4},
	}
	for _, tt := range tests {
		if got := tt.m.Required(tt.baseline); got != tt.want {
			t.Errorf("%+v.Required(%d) = %d, want %d", tt.m, tt.baseline, got, tt.want)
		}
	}
	if !(MinNextHop{}).IsZero() || (MinNextHop{Count: 1}).IsZero() {
		t.Error("IsZero wrong")
	}
}

// The Section 4.4.1 scenario: equalize paths of varying AS-path lengths
// from the backbone.
func TestSelectPathsEqualizesLengths(t *testing.T) {
	const backboneASN = 64512
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:        "equalize-backbone",
		Destination: Destination{Community: "BACKBONE_DEFAULT_ROUTE"},
		PathSets: []PathSet{{
			Name:      "any-backbone-origin",
			Signature: PathSignature{OriginASN: backboneASN},
		}},
	}}})

	// Old (long) path and new (short) path, both originated by the backbone.
	long := mkRoute("0.0.0.0/0", []uint32{100, 200, backboneASN}, "BACKBONE_DEFAULT_ROUTE")
	long.NextHop = "fav1.0"
	short := mkRoute("0.0.0.0/0", []uint32{300, backboneASN}, "BACKBONE_DEFAULT_ROUTE")
	short.NextHop = "fav2.0"
	other := mkRoute("0.0.0.0/0", []uint32{999}, "BACKBONE_DEFAULT_ROUTE") // different origin
	other.NextHop = "rogue"

	d := e.SelectPaths([]RouteAttrs{long, short, other}, 3)
	if d.UsedNative {
		t.Fatal("expected RPA selection, got native fallback")
	}
	if len(d.Selected) != 2 {
		t.Fatalf("Selected = %v, want the two backbone-origin paths", d.Selected)
	}
	if d.MatchedSet != "any-backbone-origin" {
		t.Errorf("MatchedSet = %q", d.MatchedSet)
	}
}

func TestSelectPathsPriorityOrder(t *testing.T) {
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:        "prefer-primary",
		Destination: Destination{Community: "SVC"},
		PathSets: []PathSet{
			{Name: "primary", Signature: PathSignature{NextHopRegex: "^primary"}},
			{Name: "backup", Signature: PathSignature{NextHopRegex: "^backup"}},
		},
	}}})
	primary := mkRoute("10.1.0.0/16", []uint32{1}, "SVC")
	primary.NextHop = "primary.0"
	backup := mkRoute("10.1.0.0/16", []uint32{2}, "SVC")
	backup.NextHop = "backup.0"

	// Both available: primary set wins.
	d := e.SelectPaths([]RouteAttrs{primary, backup}, 2)
	if d.MatchedSet != "primary" || len(d.Selected) != 1 || d.Selected[0] != 0 {
		t.Fatalf("want primary set, got %+v", d)
	}
	// Primary gone: backup set matches.
	d = e.SelectPaths([]RouteAttrs{backup}, 2)
	if d.MatchedSet != "backup" {
		t.Fatalf("want backup set, got %+v", d)
	}
}

func TestSelectPathsMinNextHopGate(t *testing.T) {
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:        "gated",
		Destination: Destination{Community: "D"},
		PathSets: []PathSet{
			{Name: "wide", Signature: PathSignature{NextHopRegex: "^fadu"}, MinNextHop: MinNextHop{Count: 3}},
			{Name: "fallback-set", Signature: PathSignature{NextHopRegex: "^eb"}},
		},
	}}})
	r := func(nh string) RouteAttrs {
		x := mkRoute("10.0.0.0/8", []uint32{1}, "D")
		x.NextHop = nh
		return x
	}
	// Only 2 distinct fadu next-hops: "wide" fails its MinNextHop of 3,
	// so priority falls to the next set.
	d := e.SelectPaths([]RouteAttrs{r("fadu.0"), r("fadu.1"), r("eb.0")}, 4)
	if d.MatchedSet != "fallback-set" {
		t.Fatalf("want fallback-set, got %+v", d)
	}
	// 3 distinct fadu next-hops: "wide" matches.
	d = e.SelectPaths([]RouteAttrs{r("fadu.0"), r("fadu.1"), r("fadu.2"), r("eb.0")}, 4)
	if d.MatchedSet != "wide" || len(d.Selected) != 3 {
		t.Fatalf("want wide with 3 routes, got %+v", d)
	}
}

func TestSelectPathsDistinctNextHopsNotRouteCount(t *testing.T) {
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:        "dedup",
		Destination: Destination{Community: "D"},
		PathSets: []PathSet{
			{Name: "s", Signature: PathSignature{}, MinNextHop: MinNextHop{Count: 2}},
		},
	}}})
	a := mkRoute("10.0.0.0/8", []uint32{1}, "D")
	a.NextHop = "x"
	b := mkRoute("10.0.0.0/8", []uint32{2}, "D")
	b.NextHop = "x" // same next hop, different path
	d := e.SelectPaths([]RouteAttrs{a, b}, 2)
	if !d.UsedNative {
		t.Fatalf("two routes over one next hop must not satisfy MinNextHop 2: %+v", d)
	}
}

func TestSelectPathsNativeFallback(t *testing.T) {
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:        "never-matches",
		Destination: Destination{Community: "D"},
		PathSets: []PathSet{
			{Signature: PathSignature{ASPathRegex: "^999999 "}},
		},
	}}})
	r := mkRoute("10.0.0.0/8", []uint32{1, 2}, "D")
	d := e.SelectPaths([]RouteAttrs{r}, 1)
	if !d.UsedNative {
		t.Fatalf("want native fallback, got %+v", d)
	}
	// Statement not matching destination at all: also native.
	other := mkRoute("10.0.0.0/8", []uint32{1, 2}, "OTHER")
	d = e.SelectPaths([]RouteAttrs{other}, 1)
	if !d.UsedNative {
		t.Fatalf("want native for unmatched destination, got %+v", d)
	}
	// No candidates.
	if d := e.SelectPaths(nil, 1); !d.UsedNative {
		t.Fatalf("want native for empty candidates, got %+v", d)
	}
}

func TestNativeConstraintFor(t *testing.T) {
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:                     "mnh",
		Destination:              Destination{Community: "D"},
		BgpNativeMinNextHop:      MinNextHop{Percent: 75},
		KeepFibWarmIfMnhViolated: true,
	}}})
	r := mkRoute("10.0.0.0/8", []uint32{1}, "D")
	nc := e.NativeConstraintFor(&r)
	if !nc.Present || !nc.KeepFibWarm || nc.MinNextHop.Percent != 75 {
		t.Fatalf("NativeConstraintFor = %+v", nc)
	}
	// Required: 75% of 4 = 3.
	if got := nc.MinNextHop.Required(4); got != 3 {
		t.Errorf("Required(4) = %d, want 3", got)
	}
	miss := mkRoute("10.0.0.0/8", []uint32{1}, "X")
	if nc := e.NativeConstraintFor(&miss); nc.Present {
		t.Fatalf("constraint for unmatched route = %+v", nc)
	}
	if !e.HasPathSelection(&r) || e.HasPathSelection(&miss) {
		t.Error("HasPathSelection wrong")
	}
}

func TestSelectPathsEmptyPathSetListGoesNative(t *testing.T) {
	// Section 4.4.2: PathSetList [] + BgpNativeMinNextHop is the
	// decommission-protection idiom.
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:                "protect",
		Destination:         Destination{Community: "BACKBONE_DEFAULT_ROUTE"},
		BgpNativeMinNextHop: MinNextHop{Percent: 75},
	}}})
	r := mkRoute("0.0.0.0/0", []uint32{9}, "BACKBONE_DEFAULT_ROUTE")
	d := e.SelectPaths([]RouteAttrs{r}, 8)
	if !d.UsedNative {
		t.Fatalf("empty PathSetList must use native selection: %+v", d)
	}
}

func TestSelectionCacheHitsAndStats(t *testing.T) {
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:        "c",
		Destination: Destination{Community: "D"},
		PathSets:    []PathSet{{Signature: PathSignature{ASPathRegex: "^1 "}}},
	}}})
	r := mkRoute("10.0.0.0/8", []uint32{1, 2}, "D")
	e.SelectPaths([]RouteAttrs{r}, 1)
	hits0, misses0 := e.Cache().Stats()
	if misses0 == 0 {
		t.Fatal("first evaluation should miss the cache")
	}
	e.SelectPaths([]RouteAttrs{r}, 1)
	hits1, _ := e.Cache().Stats()
	if hits1 <= hits0 {
		t.Fatalf("second evaluation should hit the cache: hits %d -> %d", hits0, hits1)
	}
}

func TestSelectPathsFirstStatementGoverns(t *testing.T) {
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{
		{
			Name:        "first",
			Destination: Destination{Community: "D"},
			PathSets:    []PathSet{{Name: "a", Signature: PathSignature{NextHopRegex: "^x"}}},
		},
		{
			Name:        "second",
			Destination: Destination{Community: "D"},
			PathSets:    []PathSet{{Name: "b", Signature: PathSignature{}}},
		},
	}})
	r := mkRoute("10.0.0.0/8", []uint32{1}, "D")
	r.NextHop = "y" // first statement's set won't match
	d := e.SelectPaths([]RouteAttrs{r}, 1)
	// First statement governs: its sets fail, so native fallback — NOT the
	// second statement.
	if !d.UsedNative {
		t.Fatalf("expected first-match statement semantics, got %+v", d)
	}
}

func TestDestinationByPrefix(t *testing.T) {
	e := evaluator(t, &Config{PathSelection: []PathSelectionStatement{{
		Name:        "by-prefix",
		Destination: Destination{Prefixes: []string{"10.2.0.0/16"}},
		PathSets:    []PathSet{{Name: "all", Signature: PathSignature{}}},
	}}})
	hit := mkRoute("10.2.0.0/16", []uint32{1})
	miss := mkRoute("10.3.0.0/16", []uint32{1})
	if d := e.SelectPaths([]RouteAttrs{hit}, 1); d.UsedNative {
		t.Fatal("prefix destination did not match")
	}
	if d := e.SelectPaths([]RouteAttrs{miss}, 1); !d.UsedNative {
		t.Fatal("wrong prefix matched")
	}
}
