package core

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/core -update` to create)", err)
	}
	if got != string(want) {
		t.Fatalf("golden mismatch for %s:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestSignatureKeyGolden pins the canonical PathSignature.Key format. The
// key is a persistence format of sorts: it feeds cache fingerprints and
// debug output, so any drift (field order, quoting, community sorting)
// silently invalidates caches and must show up in review as a golden diff.
func TestSignatureKeyGolden(t *testing.T) {
	cases := []struct {
		name string
		sig  PathSignature
	}{
		{"zero", PathSignature{}},
		{"aspath-only", PathSignature{ASPathRegex: "^4200000000"}},
		{"communities-sorted", PathSignature{Communities: []string{"ZEBRA", "BACKBONE_DEFAULT_ROUTE", "MIDDLE"}}},
		{"peer-and-nexthop", PathSignature{PeerRegex: "^ssw\\.", NextHopRegex: "fsw\\.1\\."}},
		{"origin-asn", PathSignature{OriginASN: 4200000017}},
		{"quoting", PathSignature{ASPathRegex: `a"b\c`, Communities: []string{`comm,with"quote`}}},
		{"everything", PathSignature{
			ASPathRegex:  "^200 (100 )+$",
			Communities:  []string{"B", "A"},
			PeerRegex:    "rsw\\..*",
			NextHopRegex: "^fadu",
			OriginASN:    65001,
		}},
	}
	var b strings.Builder
	for _, tc := range cases {
		fmt.Fprintf(&b, "%-20s %s\n", tc.name, tc.sig.Key())
	}
	checkGolden(t, "signature_keys", b.String())

	// Sorting communities must not change identity; criteria order in the
	// struct literal obviously cannot either.
	a := PathSignature{Communities: []string{"X", "A", "M"}}
	bSig := PathSignature{Communities: []string{"M", "X", "A"}}
	if a.Key() != bSig.Key() {
		t.Fatalf("community order changed signature identity: %q vs %q", a.Key(), bSig.Key())
	}
}

// TestFingerprintGolden pins RouteAttrs.Fingerprint values. The fingerprint
// is the Route component of CacheKey; if the hash recipe changes, every
// cached match result is silently recomputed under new keys — the golden
// file makes that an explicit, reviewed event.
func TestFingerprintGolden(t *testing.T) {
	base := RouteAttrs{
		Prefix:      netip.MustParsePrefix("10.2.3.0/24"),
		ASPath:      []uint32{4200000007, 4200000001},
		Communities: []string{"RACK_PREFIX", "POD_1"},
		LocalPref:   100,
		MED:         7,
		Origin:      OriginIGP,
		NextHop:     "fsw.1.2",
		Peer:        "fsw.1.2",
	}
	mutate := func(f func(*RouteAttrs)) RouteAttrs {
		r := base
		r.ASPath = append([]uint32(nil), base.ASPath...)
		r.Communities = append([]string(nil), base.Communities...)
		f(&r)
		return r
	}
	cases := []struct {
		name string
		r    RouteAttrs
	}{
		{"empty", RouteAttrs{}},
		{"base", base},
		{"aspath-differs", mutate(func(r *RouteAttrs) { r.ASPath[1] = 4200000002 })},
		{"community-order-differs", mutate(func(r *RouteAttrs) { r.Communities[0], r.Communities[1] = r.Communities[1], r.Communities[0] })},
		{"origin-differs", mutate(func(r *RouteAttrs) { r.Origin = OriginIncomplete })},
		{"bandwidth-differs", mutate(func(r *RouteAttrs) { r.LinkBandwidthGbps = 12.5 })},
		{"peer-nexthop-swap", mutate(func(r *RouteAttrs) { r.NextHop, r.Peer = "a", "b" })},
		// The separator byte between fields must prevent concatenation
		// collisions ("ab"+"c" vs "a"+"bc").
		{"boundary-ab-c", RouteAttrs{NextHop: "ab", Peer: "c"}},
		{"boundary-a-bc", RouteAttrs{NextHop: "a", Peer: "bc"}},
	}
	var b strings.Builder
	seen := make(map[uint64]string)
	for _, tc := range cases {
		fp := tc.r.Fingerprint()
		fmt.Fprintf(&b, "%-24s %016x\n", tc.name, fp)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision between %s and %s", prev, tc.name)
		}
		seen[fp] = tc.name
	}
	checkGolden(t, "fingerprints", b.String())
}

// TestCacheAccounting exercises the Table 2 hit/miss bookkeeping,
// including the disabled path (the "w/o cache" ablation row) and the
// wholesale-clear eviction at capacity.
func TestCacheAccounting(t *testing.T) {
	c := NewCache(2)
	k1 := CacheKey{Statement: "s", Set: 0, Route: 1}
	k2 := CacheKey{Statement: "s", Set: 0, Route: 2}
	k3 := CacheKey{Statement: "s", Set: 1, Route: 1}

	if _, ok := c.Get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k1, true)
	if v, ok := c.Get(k1); !ok || !v {
		t.Fatalf("Get after Put = %v,%v", v, ok)
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", h, m)
	}

	// Filling to capacity then adding one more wholesale-clears: the
	// survivors are gone, only the newest entry remains.
	c.Put(k2, false)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	c.Put(k3, true)
	if c.Len() != 1 {
		t.Fatalf("len after overflow = %d, want 1 (wholesale clear)", c.Len())
	}
	if _, ok := c.Get(k1); ok {
		t.Fatal("evicted entry still readable")
	}
	if v, ok := c.Get(k3); !ok || !v {
		t.Fatal("newest entry lost in the clear")
	}

	// Disabled: every Get is a counted miss (the ablation denominator) and
	// Put is a no-op, even for previously cached keys.
	h0, m0 := c.Stats()
	c.SetEnabled(false)
	if c.Len() != 0 {
		t.Fatalf("disable did not clear: len = %d", c.Len())
	}
	c.Put(k1, true)
	if _, ok := c.Get(k1); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if h, m := c.Stats(); h != h0 || m != m0+1 {
		t.Fatalf("disabled stats = %d,%d; want hits unchanged (%d) and one more miss (%d)", h, m, h0, m0+1)
	}

	// Re-enabling starts cold but keeps cumulative counters.
	c.SetEnabled(true)
	c.Put(k1, true)
	if v, ok := c.Get(k1); !ok || !v {
		t.Fatal("re-enabled cache not functional")
	}

	// Clear drops entries but not counters.
	hBefore, mBefore := c.Stats()
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	if h, m := c.Stats(); h != hBefore || m != mBefore {
		t.Fatal("Clear reset the counters")
	}
}
