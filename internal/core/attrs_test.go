package core

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func mkRoute(prefix string, asPath []uint32, comms ...string) RouteAttrs {
	return RouteAttrs{
		Prefix:      netip.MustParsePrefix(prefix),
		ASPath:      asPath,
		Communities: comms,
		LocalPref:   100,
	}
}

func TestASPathString(t *testing.T) {
	tests := []struct {
		path []uint32
		want string
	}{
		{nil, ""},
		{[]uint32{65001}, "65001"},
		{[]uint32{65001, 65002, 4200000000}, "65001 65002 4200000000"},
	}
	for _, tt := range tests {
		r := RouteAttrs{ASPath: tt.path}
		if got := r.ASPathString(); got != tt.want {
			t.Errorf("ASPathString(%v) = %q, want %q", tt.path, got, tt.want)
		}
	}
}

func TestHasCommunityAndOriginASN(t *testing.T) {
	r := mkRoute("10.0.0.0/8", []uint32{1, 2, 3}, "A", "B")
	if !r.HasCommunity("A") || !r.HasCommunity("B") || r.HasCommunity("C") {
		t.Error("HasCommunity wrong")
	}
	if got := r.OriginASN(); got != 3 {
		t.Errorf("OriginASN = %d, want 3", got)
	}
	empty := mkRoute("10.0.0.0/8", nil)
	if got := empty.OriginASN(); got != 0 {
		t.Errorf("OriginASN of empty path = %d, want 0", got)
	}
}

func TestOriginString(t *testing.T) {
	if OriginIGP.String() != "igp" || OriginEGP.String() != "egp" || OriginIncomplete.String() != "incomplete" {
		t.Error("Origin.String wrong")
	}
}

func TestFingerprintStability(t *testing.T) {
	a := mkRoute("10.0.0.0/8", []uint32{1, 2}, "X")
	b := mkRoute("10.0.0.0/8", []uint32{1, 2}, "X")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical routes have different fingerprints")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := mkRoute("10.0.0.0/8", []uint32{1, 2}, "X")
	variants := []RouteAttrs{
		mkRoute("10.0.0.0/9", []uint32{1, 2}, "X"),
		mkRoute("10.0.0.0/8", []uint32{1, 3}, "X"),
		mkRoute("10.0.0.0/8", []uint32{1, 2}, "Y"),
		mkRoute("10.0.0.0/8", []uint32{1, 2}),
	}
	variants[3].NextHop = "nh1"
	for i, v := range variants {
		if v.Fingerprint() == base.Fingerprint() {
			t.Errorf("variant %d collides with base", i)
		}
	}
	// Field-boundary confusion: ASPath [12] vs [1,2] must differ.
	p1 := mkRoute("10.0.0.0/8", []uint32{12})
	p2 := mkRoute("10.0.0.0/8", []uint32{1, 2})
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Error("AS path [12] and [1 2] collide")
	}
}

func TestFingerprintQuick(t *testing.T) {
	// Property: fingerprint is a pure function of attributes.
	f := func(lp, med uint32, asn1, asn2 uint32) bool {
		r1 := RouteAttrs{Prefix: netip.MustParsePrefix("10.0.0.0/8"),
			ASPath: []uint32{asn1, asn2}, LocalPref: lp, MED: med}
		r2 := RouteAttrs{Prefix: netip.MustParsePrefix("10.0.0.0/8"),
			ASPath: []uint32{asn1, asn2}, LocalPref: lp, MED: med}
		return r1.Fingerprint() == r2.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
