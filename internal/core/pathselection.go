package core

import (
	"fmt"
	"math"
)

// MinNextHop is a minimum-capacity threshold on a set of next hops. It can
// be an absolute count, a percentage of a baseline (the switch's configured
// next-hop count for the destination, e.g. "BgpNativeMinNextHop: 75%"), or
// both; the effective requirement is the maximum of the two. The zero value
// imposes no constraint.
type MinNextHop struct {
	Count   int     `json:"count,omitempty"`
	Percent float64 `json:"percent,omitempty"` // of the evaluation baseline
}

// IsZero reports whether the threshold imposes no constraint.
func (m MinNextHop) IsZero() bool { return m.Count == 0 && m.Percent == 0 }

// Required returns the effective minimum next-hop count given a baseline
// (the number of next hops the switch would have at full health).
func (m MinNextHop) Required(baseline int) int {
	req := m.Count
	if m.Percent > 0 {
		pct := int(math.Ceil(m.Percent / 100 * float64(baseline)))
		if pct > req {
			req = pct
		}
	}
	return req
}

// PathSet is one entry in a PathSelection statement's priority list: a group
// of BGP paths identified by a common signature, optionally gated by a
// minimum next-hop count (Section 4.3).
type PathSet struct {
	Name       string        `json:"name,omitempty"`
	Signature  PathSignature `json:"signature"`
	MinNextHop MinNextHop    `json:"min_next_hop,omitempty"`
}

// PathSelectionStatement is one statement of a PathSelectionRpa (Figure 7a):
// for routes toward Destination, walk PathSets in priority order and select
// all routes of the first set that matches enough active routes. If no set
// matches, fall back to native BGP selection, optionally constrained by
// BgpNativeMinNextHop.
type PathSelectionStatement struct {
	Name        string      `json:"name"`
	Destination Destination `json:"destination"`
	PathSets    []PathSet   `json:"path_sets,omitempty"`

	// BgpNativeMinNextHop constrains the *native* selection fallback: if
	// the natively selected multipath set is smaller than this threshold,
	// the route must be withdrawn from peers (there is nothing to fall
	// back to).
	BgpNativeMinNextHop MinNextHop `json:"bgp_native_min_next_hop,omitempty"`

	// ExpectedNextHops, when positive, is the full-health next-hop count
	// percentage thresholds are evaluated against. The controller fills it
	// from its topology view; without it the switch falls back to its
	// observed high-water count. The Figure 14 SEV hinges on this being
	// configured: a switch that has only ever seen one next hop cannot
	// otherwise know it is below 75% of full health.
	ExpectedNextHops int `json:"expected_next_hops,omitempty"`

	// KeepFibWarmIfMnhViolated keeps the forwarding entries installed when
	// BgpNativeMinNextHop forces a withdrawal, so in-flight packets are not
	// dropped. Section 7.2's SEV shows why setting this carelessly is
	// dangerous.
	KeepFibWarmIfMnhViolated bool `json:"keep_fib_warm_if_mnh_violated,omitempty"`
}

// SelectionDecision is the outcome of evaluating a PathSelection statement
// over the candidate routes for one prefix.
type SelectionDecision struct {
	// Selected holds indices (into the candidate slice) of routes chosen
	// for forwarding. Empty when UsedNative is true (the caller runs its
	// native algorithm) or when Withdraw is set with no warm FIB.
	Selected []int

	// MatchedSet names the path set that matched; empty on native fallback.
	MatchedSet string

	// UsedNative is true when no path set matched and the caller must run
	// native BGP selection (then apply ApplyNativeConstraint).
	UsedNative bool
}

// evalStatement is the compiled form of a PathSelectionStatement.
type evalStatement struct {
	src  *PathSelectionStatement
	sets []*compiledSignature
}

// Evaluator evaluates a switch's deployed RPAs. It owns the compiled
// statements and the match cache; one Evaluator lives per switch. It is not
// safe for concurrent use — the emulated speaker is single-threaded, as is a
// BGP daemon's decision process.
type Evaluator struct {
	pathSel  []*evalStatement
	routeAtt []*evalAttrStatement
	filters  []*evalFilterStatement
	cache    *Cache
}

// NewEvaluator compiles a Config into an Evaluator. It returns an error if
// any regex fails to compile or the config is structurally invalid.
func NewEvaluator(cfg *Config) (*Evaluator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{cache: NewCache(defaultCacheSize)}
	for i := range cfg.PathSelection {
		st := &cfg.PathSelection[i]
		es := &evalStatement{src: st}
		for j := range st.PathSets {
			cs, err := compileSignature(st.PathSets[j].Signature)
			if err != nil {
				return nil, fmt.Errorf("statement %q set %d: %w", st.Name, j, err)
			}
			es.sets = append(es.sets, cs)
		}
		e.pathSel = append(e.pathSel, es)
	}
	for i := range cfg.RouteAttribute {
		st := &cfg.RouteAttribute[i]
		es := &evalAttrStatement{src: st}
		for j := range st.NextHopWeights {
			cs, err := compileSignature(st.NextHopWeights[j].Signature)
			if err != nil {
				return nil, fmt.Errorf("route-attribute statement %q weight %d: %w", st.Name, j, err)
			}
			es.sigs = append(es.sigs, cs)
		}
		e.routeAtt = append(e.routeAtt, es)
	}
	for i := range cfg.RouteFilter {
		es, err := compileFilter(&cfg.RouteFilter[i])
		if err != nil {
			return nil, err
		}
		e.filters = append(e.filters, es)
	}
	return e, nil
}

// Cache returns the evaluator's statement cache (for stats and tests).
func (e *Evaluator) Cache() *Cache { return e.cache }

// HasPathSelection reports whether any PathSelection statement applies to
// the route; used by speakers to skip work for unaffected prefixes.
func (e *Evaluator) HasPathSelection(r *RouteAttrs) bool {
	return e.findStatement(r) != nil
}

// HasRouteAttribute reports whether any RouteAttribute statement's
// destination covers the route, ignoring expiry. The incremental decision
// engine uses it as a conservative superset test when computing the dirty
// set of an RPA deploy (an expired statement can never start applying, so
// including it is harmless).
func (e *Evaluator) HasRouteAttribute(r *RouteAttrs) bool {
	for _, es := range e.routeAtt {
		if es.src.Destination.Matches(r) {
			return true
		}
	}
	return false
}

// findStatement returns the first PathSelection statement whose destination
// matches the route, or nil.
func (e *Evaluator) findStatement(r *RouteAttrs) *evalStatement {
	for _, es := range e.pathSel {
		if es.src.Destination.Matches(r) {
			return es
		}
	}
	return nil
}

// NativeConstraint captures a statement's native-fallback policy so the
// caller can enforce it after running native selection.
type NativeConstraint struct {
	MinNextHop  MinNextHop
	KeepFibWarm bool
	Present     bool // false when no statement applies
	// Expected overrides the caller's observed baseline when positive.
	Expected int
}

// Baseline resolves the effective baseline: the statement's configured
// full-health count when present, else the caller's observed value.
func (nc NativeConstraint) Baseline(observed int) int {
	if nc.Expected > 0 {
		return nc.Expected
	}
	return observed
}

// NativeConstraintFor returns the native-selection constraint of the first
// statement matching the route.
func (e *Evaluator) NativeConstraintFor(r *RouteAttrs) NativeConstraint {
	es := e.findStatement(r)
	if es == nil {
		return NativeConstraint{}
	}
	return NativeConstraint{
		MinNextHop:  es.src.BgpNativeMinNextHop,
		KeepFibWarm: es.src.KeepFibWarmIfMnhViolated,
		Present:     true,
		Expected:    es.src.ExpectedNextHops,
	}
}

// SelectPaths runs the priority-based Path Selection algorithm (Section 4.3)
// over the candidate routes of one prefix. baseline is the next-hop count
// the switch would have at full health for this destination (used by
// percentage thresholds). The returned decision either carries an explicit
// selection or directs the caller to native selection.
//
// Candidates must all be routes for the same prefix; the first statement
// whose destination matches candidate 0 governs.
func (e *Evaluator) SelectPaths(candidates []RouteAttrs, baseline int) SelectionDecision {
	if len(candidates) == 0 {
		return SelectionDecision{UsedNative: true}
	}
	es := e.findStatement(&candidates[0])
	if es == nil {
		return SelectionDecision{UsedNative: true}
	}
	if es.src.ExpectedNextHops > 0 {
		baseline = es.src.ExpectedNextHops
	}
	stmtID := es.src.Name
	// Walk the priority list; first set with enough matching routes wins.
	var matched []int
	for si, cs := range es.sets {
		matched = matched[:0]
		for ri := range candidates {
			if e.cachedMatch(stmtID, si, cs, &candidates[ri]) {
				matched = append(matched, ri)
			}
		}
		// Distinct next hops, not raw route count, satisfy MinNextHop.
		need := es.src.PathSets[si].MinNextHop.Required(baseline)
		if len(matched) > 0 && distinctNextHops(candidates, matched) >= need {
			return SelectionDecision{
				Selected:   append([]int(nil), matched...),
				MatchedSet: setName(es.src.PathSets[si], si),
			}
		}
	}
	return SelectionDecision{UsedNative: true}
}

func setName(ps PathSet, i int) string {
	if ps.Name != "" {
		return ps.Name
	}
	return fmt.Sprintf("set-%d", i)
}

func distinctNextHops(candidates []RouteAttrs, idx []int) int {
	if len(idx) <= 1 {
		return len(idx)
	}
	seen := make(map[string]struct{}, len(idx))
	for _, i := range idx {
		seen[candidates[i].NextHop] = struct{}{}
	}
	return len(seen)
}

// cachedMatch wraps compiledSignature.matches with the per-route statement
// cache (Table 2 benchmarks hit and miss costs).
func (e *Evaluator) cachedMatch(stmtID string, setIdx int, cs *compiledSignature, r *RouteAttrs) bool {
	key := CacheKey{Statement: stmtID, Set: setIdx, Route: r.Fingerprint()}
	if v, ok := e.cache.Get(key); ok {
		return v
	}
	v := cs.matches(r)
	e.cache.Put(key, v)
	return v
}
