package rpadebug

import (
	"net/netip"
	"strings"
	"testing"

	"centralium/internal/controller"
	"centralium/internal/core"
	"centralium/internal/fabric"
	"centralium/internal/migrate"
	"centralium/internal/topo"
)

// rig stands up a small RPA-equipped network for inspection.
func rig(t *testing.T) *fabric.Network {
	t.Helper()
	exp := topo.BuildExpansion(topo.ExpansionParams{SSWs: 2, FAv1s: 2, Edges: 2, FAv2s: 1})
	exp.ActivateFAv2(0)
	n := fabric.New(exp.Topology, fabric.Options{Seed: 1})
	for i := 0; i < 2; i++ {
		n.OriginateAt(topo.EBID(i), migrate.DefaultRoute, []string{migrate.BackboneCommunity}, 0)
	}
	n.Converge()
	intent := controller.PathEqualizationIntent(exp.Topology, []topo.Layer{topo.LayerSSW}, migrate.BackboneCommunity)
	for dev, cfg := range intent {
		if err := n.DeployRPA(dev, cfg); err != nil {
			t.Fatal(err)
		}
	}
	n.Converge()
	return n
}

func TestListRPAs(t *testing.T) {
	n := rig(t)
	out := ListRPAs(n, topo.SSWID(0, 0))
	for _, want := range []string{"path-selection", "equalize", "community:BACKBONE_DEFAULT_ROUTE", "uplink-paths"} {
		if !strings.Contains(out, want) {
			t.Errorf("ListRPAs missing %q:\n%s", want, out)
		}
	}
	// A device without RPAs.
	out = ListRPAs(n, topo.FAv1ID(0))
	if !strings.Contains(out, "no active RPAs") {
		t.Errorf("expected empty-RPA notice:\n%s", out)
	}
	if !strings.Contains(ListRPAs(n, "ghost"), "no such device") {
		t.Error("missing-device notice absent")
	}
}

func TestExplainRoute(t *testing.T) {
	n := rig(t)
	out := ExplainRoute(n, topo.SSWID(0, 0), migrate.DefaultRoute)
	for _, want := range []string{
		"candidate route(s)",
		"governing statement",
		"ACTIVE: path set \"uplink-paths\"",
		"FIB:",
		"fav2.0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainRoute missing %q:\n%s", want, out)
		}
	}
	// Unknown prefix.
	out = ExplainRoute(n, topo.SSWID(0, 0), netip.MustParsePrefix("203.0.113.0/24"))
	if !strings.Contains(out, "no candidate routes") {
		t.Errorf("expected empty-RIB notice:\n%s", out)
	}
	// Device without an RPA explains as native.
	out = ExplainRoute(n, topo.FAv1ID(0), migrate.DefaultRoute)
	if !strings.Contains(out, "native selection") {
		t.Errorf("expected native notice:\n%s", out)
	}
	if !strings.Contains(ExplainRoute(n, "ghost", migrate.DefaultRoute), "no such device") {
		t.Error("missing-device notice absent")
	}
}

func TestDumpFIB(t *testing.T) {
	n := rig(t)
	out := DumpFIB(n, topo.SSWID(0, 0))
	if !strings.Contains(out, "0.0.0.0/0") || !strings.Contains(out, "next-hop groups") {
		t.Errorf("DumpFIB incomplete:\n%s", out)
	}
	if !strings.Contains(DumpFIB(n, "ghost"), "no such device") {
		t.Error("missing-device notice absent")
	}
}

func TestExplainWarmEntry(t *testing.T) {
	// A warm FIB entry must be flagged in the explanation.
	tp := topo.New()
	tp.AddDevice(topo.Device{ID: "up0", Layer: topo.LayerFADU})
	tp.AddDevice(topo.Device{ID: "up1", Layer: topo.LayerFADU})
	tp.AddDevice(topo.Device{ID: "ssw", Layer: topo.LayerSSW})
	tp.AddLink("ssw", "up0", 100)
	tp.AddLink("ssw", "up1", 100)
	n := fabric.New(tp, fabric.Options{Seed: 2})
	n.OriginateAt("up0", migrate.DefaultRoute, []string{migrate.BackboneCommunity}, 0)
	n.OriginateAt("up1", migrate.DefaultRoute, []string{migrate.BackboneCommunity}, 0)
	n.Converge()
	cfg := &core.Config{PathSelection: []core.PathSelectionStatement{{
		Name:                     "protect",
		Destination:              core.Destination{Community: migrate.BackboneCommunity},
		BgpNativeMinNextHop:      core.MinNextHop{Percent: 75},
		KeepFibWarmIfMnhViolated: true,
		ExpectedNextHops:         2,
	}}}
	if err := n.DeployRPA("ssw", cfg); err != nil {
		t.Fatal(err)
	}
	n.Converge()
	n.SetDeviceUp("up1", false)
	n.Converge()
	out := ExplainRoute(n, "ssw", migrate.DefaultRoute)
	if !strings.Contains(out, "WARM") {
		t.Errorf("warm entry not flagged:\n%s", out)
	}
	if !strings.Contains(out, "native fallback, constrained") {
		t.Errorf("native constraint not shown:\n%s", out)
	}
}

func TestFormatterEdgeCases(t *testing.T) {
	if got := sigString(core.PathSignature{}); got != "<any path>" {
		t.Errorf("sigString zero = %q", got)
	}
	if got := destString(core.Destination{}); got != "<all>" {
		t.Errorf("destString zero = %q", got)
	}
	if got := destString(core.Destination{Prefixes: []string{"10.0.0.0/8"}}); !strings.Contains(got, "10.0.0.0/8") {
		t.Errorf("destString prefixes = %q", got)
	}
	if got := mnhString(core.MinNextHop{Count: 2, Percent: 50}); got != "max(2, 50%)" {
		t.Errorf("mnhString = %q", got)
	}
	if got := rulesString(nil); got != "<nothing>" {
		t.Errorf("rulesString empty = %q", got)
	}
	if got := rulesString([]core.PrefixRule{{Prefix: "10.0.0.0/8", MinMaskLength: 8, MaxMaskLength: 24}}); !strings.Contains(got, "le 24 ge 8") {
		t.Errorf("rulesString = %q", got)
	}
}
