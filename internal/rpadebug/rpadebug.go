// Package rpadebug implements the operator debugging tooling of Section
// 7.2: "(1) show all active RPAs on a switch, and (2) highlight the active
// RPA given a particular route". It renders per-switch RPA listings, RIB
// explanations, and FIB dumps from a live emulated network, and backs the
// rpactl command.
package rpadebug

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"centralium/internal/bgp"
	"centralium/internal/core"
	"centralium/internal/fabric"
	"centralium/internal/topo"
)

func sessionID(id string) bgp.SessionID { return bgp.SessionID(id) }

// ListRPAs renders every statement of a switch's active RPA configuration
// (tool 1 of Section 7.2).
func ListRPAs(n *fabric.Network, dev topo.DeviceID) string {
	node := n.Node(dev)
	if node == nil {
		return fmt.Sprintf("no such device %q\n", dev)
	}
	cfg := node.Speaker.RPAConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "device %s  (RPA config version %d)\n", dev, cfg.Version)
	if cfg.IsEmpty() {
		b.WriteString("  no active RPAs — native BGP behavior\n")
		return b.String()
	}
	for _, st := range cfg.PathSelection {
		fmt.Fprintf(&b, "  path-selection %q  destination=%s\n", st.Name, destString(st.Destination))
		for i, ps := range st.PathSets {
			fmt.Fprintf(&b, "    set %d %q: %s", i, ps.Name, sigString(ps.Signature))
			if !ps.MinNextHop.IsZero() {
				fmt.Fprintf(&b, "  min-next-hop=%s", mnhString(ps.MinNextHop))
			}
			b.WriteString("\n")
		}
		if !st.BgpNativeMinNextHop.IsZero() {
			fmt.Fprintf(&b, "    native-min-next-hop=%s keep-fib-warm=%v expected=%d\n",
				mnhString(st.BgpNativeMinNextHop), st.KeepFibWarmIfMnhViolated, st.ExpectedNextHops)
		}
	}
	for _, st := range cfg.RouteAttribute {
		fmt.Fprintf(&b, "  route-attribute %q  destination=%s", st.Name, destString(st.Destination))
		if st.ExpiresAt != 0 {
			fmt.Fprintf(&b, "  expires-at=%d", st.ExpiresAt)
		}
		b.WriteString("\n")
		for _, w := range st.NextHopWeights {
			fmt.Fprintf(&b, "    weight %d for %s\n", w.Weight, sigString(w.Signature))
		}
	}
	for _, st := range cfg.RouteFilter {
		fmt.Fprintf(&b, "  route-filter %q  peers=%q\n", st.Name, st.PeerSignature)
		if st.Ingress != nil {
			fmt.Fprintf(&b, "    ingress allow: %s\n", rulesString(st.Ingress.Rules))
		}
		if st.Egress != nil {
			fmt.Fprintf(&b, "    egress  allow: %s\n", rulesString(st.Egress.Rules))
		}
	}
	return b.String()
}

// ExplainRoute renders which RPA statement governs a prefix on a switch and
// how its path sets evaluated against the current RIB (tool 2 of Section
// 7.2).
func ExplainRoute(n *fabric.Network, dev topo.DeviceID, prefix netip.Prefix) string {
	node := n.Node(dev)
	if node == nil {
		return fmt.Sprintf("no such device %q\n", dev)
	}
	sp := node.Speaker
	cands := sp.Candidates(prefix)
	var b strings.Builder
	fmt.Fprintf(&b, "device %s  prefix %s\n", dev, prefix)
	if len(cands) == 0 {
		b.WriteString("  no candidate routes in the RIB\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %d candidate route(s):\n", len(cands))
	for i, c := range cands {
		fmt.Fprintf(&b, "    [%d] via %-14s as-path [%s] comms %v\n",
			i, c.NextHop, c.ASPathString(), c.Communities)
	}

	ev, err := core.NewEvaluator(sp.RPAConfig())
	if err != nil {
		fmt.Fprintf(&b, "  RPA config failed to compile: %v\n", err)
		return b.String()
	}
	ex := ev.ExplainSelection(cands, sp.Baseline(prefix))
	if ex.Statement == "" {
		b.WriteString("  no RPA statement matches this destination — native selection\n")
	} else {
		fmt.Fprintf(&b, "  governing statement: %q (baseline %d next hops)\n", ex.Statement, ex.Baseline)
		for _, se := range ex.Sets {
			status := "NOT SATISFIED"
			if se.Satisfied {
				status = "satisfied"
			}
			fmt.Fprintf(&b, "    set %q: matched %d route(s), %d/%d distinct next hops — %s\n",
				se.Name, len(se.MatchedRoutes), se.DistinctNextHops, se.RequiredNextHops, status)
		}
		switch {
		case ex.ChosenSet != "":
			fmt.Fprintf(&b, "  => ACTIVE: path set %q\n", ex.ChosenSet)
		case ex.Native.Present:
			fmt.Fprintf(&b, "  => native fallback, constrained: min-next-hop=%s keep-fib-warm=%v\n",
				mnhString(ex.Native.MinNextHop), ex.Native.KeepFibWarm)
		default:
			b.WriteString("  => native fallback (no sets satisfied)\n")
		}
	}

	hops := sp.FIB().Lookup(prefix)
	if len(hops) == 0 {
		b.WriteString("  FIB: no entry\n")
	} else {
		warm := ""
		if sp.FIB().IsWarm(prefix) {
			warm = "  (WARM: withdrawn from peers but still forwarding)"
		}
		fmt.Fprintf(&b, "  FIB:%s\n", warm)
		for _, h := range hops {
			peer, _ := n.SessionPeer(dev, sessionID(h.ID))
			fmt.Fprintf(&b, "    -> %s (session %s) weight %d\n", peer, h.ID, h.Weight)
		}
	}
	return b.String()
}

// DumpFIB renders a switch's full FIB, sorted by prefix.
func DumpFIB(n *fabric.Network, dev topo.DeviceID) string {
	node := n.Node(dev)
	if node == nil {
		return fmt.Sprintf("no such device %q\n", dev)
	}
	tbl := node.Speaker.FIB()
	st := tbl.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "device %s  FIB: %d prefixes, %d next-hop groups (peak %d, limit %d)\n",
		dev, st.Entries, st.Groups, st.PeakGroups, st.Limit)
	for _, p := range tbl.Prefixes() {
		var hops []string
		for _, h := range tbl.Lookup(p) {
			peer, _ := n.SessionPeer(dev, sessionID(h.ID))
			if peer == "" {
				peer = topo.DeviceID(h.ID)
			}
			hops = append(hops, fmt.Sprintf("%s(w%d)", peer, h.Weight))
		}
		sort.Strings(hops)
		fmt.Fprintf(&b, "  %-18s -> %s\n", p, strings.Join(hops, " "))
	}
	return b.String()
}

func destString(d core.Destination) string {
	if d.IsZero() {
		return "<all>"
	}
	if d.Community != "" {
		return "community:" + d.Community
	}
	return "prefixes:" + strings.Join(d.Prefixes, ",")
}

func sigString(s core.PathSignature) string {
	if s.IsZero() {
		return "<any path>"
	}
	var parts []string
	if s.ASPathRegex != "" {
		parts = append(parts, "as-path~"+s.ASPathRegex)
	}
	if len(s.Communities) > 0 {
		parts = append(parts, "comms="+strings.Join(s.Communities, ","))
	}
	if s.PeerRegex != "" {
		parts = append(parts, "peer~"+s.PeerRegex)
	}
	if s.NextHopRegex != "" {
		parts = append(parts, "next-hop~"+s.NextHopRegex)
	}
	if s.OriginASN != 0 {
		parts = append(parts, fmt.Sprintf("origin-asn=%d", s.OriginASN))
	}
	return strings.Join(parts, " ")
}

func mnhString(m core.MinNextHop) string {
	switch {
	case m.Count > 0 && m.Percent > 0:
		return fmt.Sprintf("max(%d, %.0f%%)", m.Count, m.Percent)
	case m.Percent > 0:
		return fmt.Sprintf("%.0f%%", m.Percent)
	default:
		return fmt.Sprintf("%d", m.Count)
	}
}

func rulesString(rules []core.PrefixRule) string {
	if len(rules) == 0 {
		return "<nothing>"
	}
	var parts []string
	for _, r := range rules {
		if r.MinMaskLength == 0 && r.MaxMaskLength == 0 {
			parts = append(parts, r.Prefix)
		} else {
			parts = append(parts, fmt.Sprintf("%s le %d ge %d", r.Prefix, r.MaxMaskLength, r.MinMaskLength))
		}
	}
	return strings.Join(parts, ", ")
}
