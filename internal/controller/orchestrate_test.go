package controller

import (
	"errors"
	"net/netip"
	"strings"
	"testing"

	"centralium/internal/core"
	"centralium/internal/fabric"
	"centralium/internal/topo"
)

// TestOrchestratedChangeOrdering demonstrates the §7.1 dependency: an RPA
// keyed on a community only works once the base policy attaches that
// community at origination.
func TestOrchestratedChangeOrdering(t *testing.T) {
	tp := topo.New()
	tp.AddDevice(topo.Device{ID: "origin", Layer: topo.LayerEB})
	tp.AddDevice(topo.Device{ID: "mid", Layer: topo.LayerFADU})
	tp.AddDevice(topo.Device{ID: "leaf", Layer: topo.LayerSSW})
	tp.AddLink("origin", "leaf", 100)
	tp.AddLink("origin", "mid", 100)
	tp.AddLink("mid", "leaf", 100)
	n := fabric.New(tp, fabric.Options{Seed: 1})
	p := netip.MustParsePrefix("0.0.0.0/0")
	// Initially originated WITHOUT the community the RPA needs.
	n.OriginateAt("origin", p, nil, 0)
	n.Converge()

	rpa := Intent{"leaf": {
		Version: 1,
		PathSelection: []core.PathSelectionStatement{{
			Name:        "equalize",
			Destination: core.Destination{Community: "NEW_TAG"},
			PathSets: []core.PathSet{{
				Signature: core.PathSignature{Communities: []string{"NEW_TAG"}},
			}},
		}},
	}}
	c := &Controller{
		Topo:   tp,
		Deploy: func(d topo.DeviceID, cfg *core.Config) error { return n.DeployRPA(d, cfg) },
		Settle: func() { n.Converge() },
	}

	// Uncoordinated (RPA only, base policy missing): the RPA matches
	// nothing and leaf keeps native single-path selection.
	if err := c.Run(Rollout{Intent: rpa}); err != nil {
		t.Fatal(err)
	}
	if got := len(n.NextHopWeights("leaf", p)); got != 1 {
		t.Fatalf("leaf paths without base policy = %d, want 1 (RPA inert)", got)
	}

	// Orchestrated: base policy (re-originate with the community) first,
	// verified, then the RPA — now both paths are selected.
	err := c.Execute(OrchestratedChange{
		Name: "tag-and-equalize",
		ApplyBasePolicy: func() error {
			n.OriginateAt("origin", p, []string{"NEW_TAG"}, 0)
			return nil
		},
		VerifyBasePolicy: func() error {
			for _, cand := range n.Speaker("leaf").Candidates(p) {
				if !cand.HasCommunity("NEW_TAG") {
					return errors.New("community not yet visible at leaf")
				}
			}
			return nil
		},
		Rollout: Rollout{Intent: rpa},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.NextHopWeights("leaf", p)); got != 2 {
		t.Fatalf("leaf paths after orchestration = %d, want 2", got)
	}
}

func TestOrchestratedChangeErrors(t *testing.T) {
	c := &Controller{Deploy: func(topo.DeviceID, *core.Config) error { return nil }}
	err := c.Execute(OrchestratedChange{
		Name:            "x",
		ApplyBasePolicy: func() error { return errors.New("push failed") },
	})
	if err == nil || !strings.Contains(err.Error(), "base policy") {
		t.Fatalf("err = %v", err)
	}
	err = c.Execute(OrchestratedChange{
		Name:             "y",
		VerifyBasePolicy: func() error { return errors.New("not converged") },
	})
	if err == nil || !strings.Contains(err.Error(), "verification") {
		t.Fatalf("err = %v", err)
	}
}
