package controller

// What-if gating (Section 5.3.2, Section 7.1): before a rollout touches
// the fleet, fork the emulated fabric's state and try the change there.
// The fork is a full checkpoint/restore of the live network — same RIBs,
// FIBs, RPAs, clock, and RNG position — so the simulation sees exactly the
// state the real push would, and a hazard found on the fork costs nothing.

import (
	"fmt"

	"centralium/internal/fabric"
	"centralium/internal/snapshot"
)

// WhatIf wraps a simulation as a pre-deployment HealthCheck: at check time
// the live network's state is captured and restored into an independent
// fork, and simulate runs against the fork. An error blocks the rollout
// while the live network stays byte-for-byte untouched — the fork absorbs
// every side effect of the simulated change.
//
// The live network must be quiescent when the check runs (no pending
// control callbacks), which is always true at the pre-deployment point of
// a Controller.Run.
//
// Concurrency: a fabric.Network is single-threaded by contract, so two
// WhatIf checks against the same live network must not run concurrently —
// Capture reads engine state. The snapshot taken inside the check is
// immutable and the fork is fully independent (see internal/snapshot), so
// checks against distinct networks — e.g. per-request forks restored from
// one shared cached snapshot, as centraliumd does — are safe to run in
// parallel.
func WhatIf(name string, n *fabric.Network, simulate func(fork *fabric.Network) error) HealthCheck {
	return HealthCheck{
		Name: "what-if " + name,
		Check: func() error {
			snap, err := snapshot.Capture(n)
			if err != nil {
				return fmt.Errorf("what-if %q: capture live state: %w", name, err)
			}
			fork, err := snap.Restore()
			if err != nil {
				return fmt.Errorf("what-if %q: fork: %w", name, err)
			}
			return simulate(fork)
		},
	}
}
