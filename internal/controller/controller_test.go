package controller

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"centralium/internal/core"
	"centralium/internal/fabric"
	"centralium/internal/nsdb"
	"centralium/internal/te"
	"centralium/internal/topo"
)

const backboneCommunity = "BACKBONE_DEFAULT_ROUTE"

// fabricController wires a controller straight onto an emulated fabric.
func fabricController(t *topo.Topology, n *fabric.Network, db *nsdb.Cluster) *Controller {
	return &Controller{
		Topo: t,
		DB:   db,
		Deploy: func(dev topo.DeviceID, cfg *core.Config) error {
			return n.DeployRPA(dev, cfg)
		},
		Settle: func() { n.Converge() },
	}
}

func TestIntentMergeAndHelpers(t *testing.T) {
	a := Intent{"x": {Version: 1, PathSelection: []core.PathSelectionStatement{{Name: "a"}}}}
	b := Intent{
		"x": {Version: 2, PathSelection: []core.PathSelectionStatement{{Name: "b"}}},
		"y": {Version: 2},
	}
	m := a.Merge(b)
	if len(m) != 2 {
		t.Fatalf("merged devices = %d", len(m))
	}
	if len(m["x"].PathSelection) != 2 {
		t.Fatalf("x statements = %d, want 2", len(m["x"].PathSelection))
	}
	devs := m.Devices()
	if len(devs) != 2 || devs[0] != "x" || devs[1] != "y" {
		t.Fatalf("Devices = %v", devs)
	}
	if m.TotalLOC() <= 0 {
		t.Fatal("TotalLOC = 0")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := Intent{"z": {PathSelection: []core.PathSelectionStatement{{Name: ""}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid intent accepted")
	}
}

func TestWavesOrdering(t *testing.T) {
	tp := topo.BuildFig10(topo.Fig10Params{FSWs: 2, SSWs: 2, FAs: 2})
	c := &Controller{Topo: tp}
	intent := Intent{}
	for _, l := range []topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA} {
		for _, d := range tp.ByLayer(l) {
			intent[d.ID] = &core.Config{}
		}
	}
	// Deployment with backbone origin (altitude 5): FSW (alt 1, dist 4)
	// first, then SSW (dist 3), then FA (dist 2) — bottom-up.
	waves := c.Waves(Rollout{Intent: intent, OriginAltitude: topo.LayerEB.Altitude()})
	if len(waves) != 3 {
		t.Fatalf("waves = %d", len(waves))
	}
	wantLayers := []topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA}
	for i, wave := range waves {
		for _, dev := range wave {
			if tp.Device(dev).Layer != wantLayers[i] {
				t.Fatalf("wave %d contains %s (layer %v), want %v", i, dev, tp.Device(dev).Layer, wantLayers[i])
			}
		}
	}
	// Removal reverses: FA first.
	waves = c.Waves(Rollout{Intent: intent, OriginAltitude: topo.LayerEB.Altitude(), Removal: true})
	if tp.Device(waves[0][0]).Layer != topo.LayerFA {
		t.Fatalf("removal wave 0 = %v", waves[0])
	}
	// Unknown devices are skipped.
	waves = c.Waves(Rollout{Intent: Intent{"ghost": &core.Config{}}})
	if len(waves) != 0 {
		t.Fatalf("ghost waves = %v", waves)
	}
}

func TestRunDeploysThroughFabric(t *testing.T) {
	tp := topo.BuildFig10(topo.Fig10Params{})
	n := fabric.New(tp, fabric.Options{Seed: 21})
	p := netip.MustParsePrefix("0.0.0.0/0")
	n.OriginateAt(topo.EBID(0), p, []string{backboneCommunity}, 0)
	n.Converge()

	db := nsdb.NewCluster(2)
	c := fabricController(tp, n, db)
	intent := PathEqualizationIntent(tp, []topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA}, backboneCommunity)
	err := c.Run(Rollout{Intent: intent, OriginAltitude: topo.LayerEB.Altitude()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Deployments() != len(intent) {
		t.Fatalf("Deployments = %d, want %d", c.Deployments(), len(intent))
	}
	// Every FA now load-balances over the direct and DMAG paths.
	nh := n.NextHopWeights(topo.FAID(0), p)
	if len(nh) != 2 {
		t.Fatalf("FA next hops = %v, want direct + DMAG", nh)
	}
	// No stragglers.
	if s := c.Stragglers(); len(s) != 0 {
		t.Fatalf("stragglers = %v", s)
	}
}

func TestRunHealthChecks(t *testing.T) {
	tp := topo.BuildFig10(topo.Fig10Params{})
	n := fabric.New(tp, fabric.Options{Seed: 1})
	c := fabricController(tp, n, nil)
	intent := Intent{topo.FAID(0): &core.Config{Version: version()}}

	failing := HealthCheck{Name: "congestion-free", Check: func() error { return errors.New("link hot") }}
	err := c.Run(Rollout{Intent: intent, Pre: []HealthCheck{failing}})
	if err == nil || !strings.Contains(err.Error(), "congestion-free") {
		t.Fatalf("err = %v, want pre-check failure", err)
	}
	if c.Deployments() != 0 {
		t.Fatal("deployed despite failed pre-check")
	}
	err = c.Run(Rollout{Intent: intent, Post: []HealthCheck{failing}})
	if err == nil || !strings.Contains(err.Error(), "post-deployment") {
		t.Fatalf("err = %v, want post-check failure", err)
	}
}

func TestRunRejectsInvalidIntentAndMissingBackend(t *testing.T) {
	tp := topo.BuildFig10(topo.Fig10Params{})
	c := &Controller{Topo: tp}
	if err := c.Run(Rollout{}); err == nil {
		t.Fatal("no backend accepted")
	}
	c.Deploy = func(topo.DeviceID, *core.Config) error { return nil }
	bad := Intent{topo.FAID(0): {PathSelection: []core.PathSelectionStatement{{Name: ""}}}}
	if err := c.Run(Rollout{Intent: bad}); err == nil {
		t.Fatal("invalid intent deployed")
	}
	// Deployment failure propagates.
	c.Deploy = func(topo.DeviceID, *core.Config) error { return errors.New("switch unreachable") }
	good := Intent{topo.FAID(0): &core.Config{}}
	if err := c.Run(Rollout{Intent: good}); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v", err)
	}
}

func TestStragglerDetection(t *testing.T) {
	tp := topo.BuildFig10(topo.Fig10Params{})
	db := nsdb.NewCluster(1)
	c := &Controller{Topo: tp, DB: db}
	// Intent published but device never converged to it.
	db.Publish(nsdb.Intended, nsdb.DevicePath(string(topo.FAID(0)), "rpa"), &core.Config{Version: 9})
	s := c.Stragglers()
	if len(s) != 1 {
		t.Fatalf("stragglers = %v", s)
	}
	// No DB: no stragglers.
	if got := (&Controller{Topo: tp}).Stragglers(); got != nil {
		t.Fatalf("stragglers without DB = %v", got)
	}
}

func TestAppsGenerateValidIntent(t *testing.T) {
	tp := topo.BuildFabric(topo.FabricParams{})
	ssws := devIDs(tp.ByLayer(topo.LayerSSW))
	fauus := devIDs(tp.ByLayer(topo.LayerFAUU))
	dest := core.Destination{Community: "SVC"}

	apps := map[string]Intent{
		"path-equalization":   PathEqualizationIntent(tp, []topo.Layer{topo.LayerSSW}, backboneCommunity),
		"capacity-protection": CapacityProtectionIntent(ssws, backboneCommunity, 75, true, 4),
		"traffic-engineering": TrafficEngineeringIntent(dest, map[topo.DeviceID][]te.Path{fauus[0]: {{ID: "eb.0", CapacityGbps: 100}, {ID: "eb.1", CapacityGbps: 50}}}, 0),
		"static-wcmp":         StaticWCMPIntent(fauus, dest),
		"boundary-filter":     BoundaryFilterIntent(fauus, "^eb", []core.PrefixRule{{Prefix: "0.0.0.0/0"}}),
		"egress-filter":       EgressFilterIntent(fauus, "^eb", []core.PrefixRule{{Prefix: "10.0.0.0/8", MinMaskLength: 8, MaxMaskLength: 16}}),
		"drain-weight":        DrainWeightIntent(ssws, dest, "^fadu\\.g0"),
		"primary-backup":      PrimaryBackupIntent(ssws, dest, "^fadu\\.g0", "^fadu\\.g1"),
		"anycast-stability":   AnycastStabilityIntent(ssws, "ANYCAST_VIP", 2),
		"proximity":           ProximityIntent(ssws, dest, 4200000001),
		"service-isolation":   ServiceIsolationIntent(fauus, "^eb", []core.PrefixRule{{Prefix: "10.0.0.0/8", MinMaskLength: 8, MaxMaskLength: 24}}),
		"origin-pinning":      OriginPinningIntent(ssws, dest, []uint32{4200000001, 4200000002}),
	}
	if len(apps) < 10 {
		t.Fatalf("only %d apps", len(apps))
	}
	for name, intent := range apps {
		if len(intent) == 0 {
			t.Errorf("app %s produced empty intent", name)
			continue
		}
		if err := intent.Validate(); err != nil {
			t.Errorf("app %s intent invalid: %v", name, err)
		}
		if intent.TotalLOC() <= 0 {
			t.Errorf("app %s LOC = 0", name)
		}
	}
}

func TestDeviceRegex(t *testing.T) {
	re := DeviceRegex("fadu.g0.0", "fadu.g1.0")
	if re != `^(fadu\.g0\.0|fadu\.g1\.0)$` {
		t.Fatalf("DeviceRegex = %q", re)
	}
	sig := core.PathSignature{NextHopRegex: re}
	cfg := core.Config{PathSelection: []core.PathSelectionStatement{{
		Name: "x", PathSets: []core.PathSet{{Signature: sig}},
	}}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("generated regex invalid: %v", err)
	}
}

func TestPrimaryBackupBehavior(t *testing.T) {
	// End-to-end: primary preferred, backup engaged when primary drains.
	tp := topo.New()
	tp.AddDevice(topo.Device{ID: "primary", Layer: topo.LayerFADU})
	tp.AddDevice(topo.Device{ID: "backup", Layer: topo.LayerFADU})
	tp.AddDevice(topo.Device{ID: "origin", Layer: topo.LayerEB})
	tp.AddDevice(topo.Device{ID: "leaf", Layer: topo.LayerSSW})
	tp.AddLink("leaf", "primary", 100)
	tp.AddLink("leaf", "backup", 100)
	tp.AddLink("primary", "origin", 100)
	tp.AddLink("backup", "origin", 100)
	n := fabric.New(tp, fabric.Options{Seed: 2})
	p := netip.MustParsePrefix("0.0.0.0/0")
	n.OriginateAt("origin", p, []string{"SVC"}, 0)
	n.Converge()

	c := fabricController(tp, n, nil)
	intent := PrimaryBackupIntent([]topo.DeviceID{"leaf"}, core.Destination{Community: "SVC"}, "^primary$", "^backup$")
	if err := c.Run(Rollout{Intent: intent, OriginAltitude: topo.LayerEB.Altitude()}); err != nil {
		t.Fatal(err)
	}
	nh := n.NextHopWeights("leaf", p)
	if len(nh) != 1 || nh["primary"] == 0 {
		t.Fatalf("next hops = %v, want primary only", nh)
	}
	n.SetDrained("primary", true)
	n.Converge()
	nh = n.NextHopWeights("leaf", p)
	if len(nh) != 1 || nh["backup"] == 0 {
		t.Fatalf("next hops after drain = %v, want backup", nh)
	}
}

func devIDs(devs []*topo.Device) []topo.DeviceID {
	out := make([]topo.DeviceID, len(devs))
	for i, d := range devs {
		out[i] = d.ID
	}
	return out
}

func TestVersionMonotonic(t *testing.T) {
	a, b := version(), version()
	if b <= a {
		t.Fatalf("version not monotonic: %d then %d", a, b)
	}
	_ = fmt.Sprintf // keep fmt for other tests
}

func TestSlowRollGate(t *testing.T) {
	tp := topo.BuildFig10(topo.Fig10Params{FSWs: 2, SSWs: 2, FAs: 2})
	db := nsdb.NewCluster(1)
	// A backend that reports truth: it updates current state for every
	// device except one silent straggler.
	straggler := topo.SSWID(0, 1)
	c := &Controller{
		Topo:                  tp,
		DB:                    db,
		BackendUpdatesCurrent: true,
		Deploy: func(dev topo.DeviceID, cfg *core.Config) error {
			if dev == straggler {
				return nil // "succeeds" but never converges
			}
			db.Publish(nsdb.Current, nsdb.DevicePath(string(dev), "rpa"), cfg.Clone())
			return nil
		},
	}
	intent := Intent{}
	for _, l := range []topo.Layer{topo.LayerFSW, topo.LayerSSW} {
		for _, d := range tp.ByLayer(l) {
			intent[d.ID] = &core.Config{Version: version()}
		}
	}
	// Gate at 10%: one straggler among four devices (25%) must trip it.
	err := c.Run(Rollout{Intent: intent, OriginAltitude: topo.LayerEB.Altitude(),
		MaxStragglerFraction: 0.1})
	if err == nil || !strings.Contains(err.Error(), "slow-roll gate") {
		t.Fatalf("err = %v, want slow-roll gate trip", err)
	}
	// The gate stopped the rollout before the SSW wave... or at it; either
	// way not all devices were deployed plus the run errored early.
	if c.Deployments() == 0 {
		t.Fatal("nothing deployed")
	}
	// Generous gate (60%): passes the gate but the final consistency check
	// still reports the straggler.
	c2 := &Controller{Topo: tp, DB: nsdb.NewCluster(1), BackendUpdatesCurrent: true,
		Deploy: c.Deploy}
	// rewire deploy to c2's DB
	db2 := c2.DB
	c2.Deploy = func(dev topo.DeviceID, cfg *core.Config) error {
		if dev == straggler {
			return nil
		}
		db2.Publish(nsdb.Current, nsdb.DevicePath(string(dev), "rpa"), cfg.Clone())
		return nil
	}
	err = c2.Run(Rollout{Intent: intent, OriginAltitude: topo.LayerEB.Altitude(),
		MaxStragglerFraction: 0.6})
	if err == nil || !strings.Contains(err.Error(), "stragglers after rollout") {
		t.Fatalf("err = %v, want final straggler report", err)
	}
}
