package controller

import "fmt"

// OrchestratedChange implements the Section 7.1 "unified routing change
// orchestration": RPAs identify routes through attributes that the *base*
// BGP policy sets (e.g. the community attached at origination), so the two
// must deploy in a coordinated order — base policy first, verified, then
// the RPA that depends on it; removal in reverse. Uncoordinated deployment
// "can lead to unexpected routing behavior": an RPA whose destination
// community does not exist yet silently matches nothing.
type OrchestratedChange struct {
	// Name for error messages.
	Name string

	// ApplyBasePolicy performs the base BGP policy change (community
	// tagging, origination changes). It must be idempotent.
	ApplyBasePolicy func() error

	// VerifyBasePolicy confirms the base change took effect fleet-wide
	// before the dependent RPA deploys (the paper's pre-deployment
	// verification); nil skips verification.
	VerifyBasePolicy func() error

	// Rollout is the dependent RPA deployment.
	Rollout Rollout
}

// Execute runs the change in the safe order on the controller.
func (c *Controller) Execute(oc OrchestratedChange) error {
	if oc.ApplyBasePolicy != nil {
		if err := oc.ApplyBasePolicy(); err != nil {
			return fmt.Errorf("controller: %s: base policy: %w", oc.Name, err)
		}
	}
	if c.Settle != nil {
		c.Settle()
	}
	if oc.VerifyBasePolicy != nil {
		if err := oc.VerifyBasePolicy(); err != nil {
			return fmt.Errorf("controller: %s: base policy verification: %w", oc.Name, err)
		}
	}
	if err := c.Run(oc.Rollout); err != nil {
		return fmt.Errorf("controller: %s: %w", oc.Name, err)
	}
	return nil
}
