package controller

import (
	"context"
	"fmt"
)

// OrchestratedChange implements the Section 7.1 "unified routing change
// orchestration": RPAs identify routes through attributes that the *base*
// BGP policy sets (e.g. the community attached at origination), so the two
// must deploy in a coordinated order — base policy first, verified, then
// the RPA that depends on it; removal in reverse. Uncoordinated deployment
// "can lead to unexpected routing behavior": an RPA whose destination
// community does not exist yet silently matches nothing.
type OrchestratedChange struct {
	// Name for error messages.
	Name string

	// ApplyBasePolicy performs the base BGP policy change (community
	// tagging, origination changes). It must be idempotent.
	ApplyBasePolicy func() error

	// VerifyBasePolicy confirms the base change took effect fleet-wide
	// before the dependent RPA deploys (the paper's pre-deployment
	// verification); nil skips verification.
	VerifyBasePolicy func() error

	// RemoveBasePolicy undoes ApplyBasePolicy. When set, Execute calls it
	// if the change fails after the base policy was applied — failed
	// verification or a failed rollout — so an aborted change never leaves
	// the base policy dangling with no RPA depending on it (the reverse of
	// the coordinated deploy order). It must be idempotent; nil keeps the
	// historical leave-in-place behavior.
	RemoveBasePolicy func() error

	// Rollout is the dependent RPA deployment.
	Rollout Rollout
}

// Execute runs the change in the safe order on the controller. It is
// ExecuteCtx under a background context.
func (c *Controller) Execute(oc OrchestratedChange) error {
	return c.ExecuteCtx(context.Background(), oc)
}

// ExecuteCtx runs the change in the safe order under a context: base
// policy, settle, verification, then the dependent rollout (which checks
// the context before every device). Failure after the base policy is
// applied triggers RemoveBasePolicy (when set) followed by a settle, so
// the fabric returns to its pre-change routing state; pair it with
// Rollout.UnwindOnFailure for full cleanup of a partially-deployed RPA.
func (c *Controller) ExecuteCtx(ctx context.Context, oc OrchestratedChange) error {
	applied := false
	// cleanup removes the dangling base policy after a post-apply failure,
	// folding a removal error into the change's error.
	cleanup := func(err error) error {
		if !applied || oc.RemoveBasePolicy == nil {
			return err
		}
		if rerr := oc.RemoveBasePolicy(); rerr != nil {
			return fmt.Errorf("%w (base policy removal failed: %v)", err, rerr)
		}
		if c.Settle != nil {
			c.Settle()
		}
		return fmt.Errorf("%w (base policy removed)", err)
	}
	if oc.ApplyBasePolicy != nil {
		if err := oc.ApplyBasePolicy(); err != nil {
			return fmt.Errorf("controller: %s: base policy: %w", oc.Name, err)
		}
		applied = true
	}
	if c.Settle != nil {
		c.Settle()
	}
	if oc.VerifyBasePolicy != nil {
		if err := oc.VerifyBasePolicy(); err != nil {
			return cleanup(fmt.Errorf("controller: %s: base policy verification: %w", oc.Name, err))
		}
	}
	if err := c.RunCtx(ctx, oc.Rollout); err != nil {
		return cleanup(fmt.Errorf("controller: %s: %w", oc.Name, err))
	}
	return nil
}
