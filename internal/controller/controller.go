// Package controller implements Centralium's application layer (Section 5):
// use-case applications that compile operator intent into per-switch RPA
// configs, pre/post-deployment health checks, and the coordinated,
// layer-ordered rollout of Section 5.3.2 that prevents transient funneling
// during deployment. State flows through NSDB; deployment goes through a
// pluggable backend (the Switch Agent RPC in the full stack, or a direct
// fabric hook in experiments).
package controller

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"centralium/internal/core"
	"centralium/internal/nsdb"
	"centralium/internal/topo"
)

// Intent is a per-device RPA assignment produced by an application.
type Intent map[topo.DeviceID]*core.Config

// Merge combines two intents; devices present in both get merged configs
// (orthogonal RPAs compose by concatenation).
func (in Intent) Merge(other Intent) Intent {
	out := make(Intent, len(in)+len(other))
	for d, c := range in {
		out[d] = c.Clone()
	}
	for d, c := range other {
		if prev, ok := out[d]; ok {
			out[d] = prev.Merge(c)
		} else {
			out[d] = c.Clone()
		}
	}
	return out
}

// Devices returns the intent's target devices, sorted.
func (in Intent) Devices() []topo.DeviceID {
	out := make([]topo.DeviceID, 0, len(in))
	for d := range in {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks every per-device config.
func (in Intent) Validate() error {
	for d, cfg := range in {
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("controller: intent for %s: %w", d, err)
		}
	}
	return nil
}

// TotalLOC sums the generated RPA line counts (the Table 3 "RPA LOC"
// metric).
func (in Intent) TotalLOC() int {
	total := 0
	for _, cfg := range in {
		total += cfg.LOC()
	}
	return total
}

// HealthCheck is one pre- or post-deployment verification step.
type HealthCheck struct {
	Name  string
	Check func() error
}

// DeployFunc pushes one device's config; the full stack routes this through
// the Switch Agent, experiments bind it straight to the fabric.
type DeployFunc func(device topo.DeviceID, cfg *core.Config) error

// Controller coordinates RPA rollouts across the fleet.
type Controller struct {
	Topo *topo.Topology
	// DB is optional; when set, intended/current state is tracked in NSDB
	// and straggler detection is available.
	DB     *nsdb.Cluster
	Deploy DeployFunc

	// Settle, when set, runs between deployment waves (layers) to let the
	// distributed control plane converge before the next layer changes —
	// the gating of Section 5.3.2. Experiments bind it to Converge.
	Settle func()

	// Fetch, when set, reads a device's currently-deployed config from the
	// backend (nil when the device carries none). Rollout.UnwindOnFailure
	// needs it to capture prior configs before overwriting them.
	Fetch func(device topo.DeviceID) *core.Config

	// BackendUpdatesCurrent marks the deployment backend as responsible
	// for publishing current state into NSDB (the Switch Agent does this
	// after a successful RPC). When false, Run publishes current itself —
	// which makes straggler detection a formality. Only with a
	// truth-reporting backend do the slow-roll gate and the final
	// consistency check detect real stragglers.
	BackendUpdatesCurrent bool

	deployments int
}

// Deployments counts per-device deployments performed.
func (c *Controller) Deployments() int { return c.deployments }

// Rollout is one coordinated deployment of an intent.
type Rollout struct {
	Intent Intent

	// OriginAltitude is the altitude of the layer originating the affected
	// routes (5 for backbone-originated prefixes). Deployment order is
	// farthest-from-origin first; removal is closest-first (Section 5.3.2).
	OriginAltitude int

	// Removal marks this rollout as removing RPAs (reverses the order).
	Removal bool

	// SettlePerDevice runs the Settle hook after every device rather than
	// after every wave — the realistic cadence when devices pick up an RPA
	// one at a time. With correct sequencing this is safe because each
	// wave's downstream layers already carry the RPA (Section 5.3.2); the
	// Figure 10 experiment uses it to expose the uncoordinated hazard.
	SettlePerDevice bool

	// MaxStragglerFraction, when positive, implements the Section 5.1
	// slow roll: after each wave, if more than this fraction of the
	// devices deployed so far are out-of-sync (current != intended in
	// NSDB), the rollout aborts instead of pushing further. Requires a
	// DB-attached controller with a truth-reporting backend.
	MaxStragglerFraction float64

	// Schedule, when non-nil, overrides the altitude-derived wave order
	// with an explicit deployment schedule: each inner slice is one wave,
	// deployed in order. Devices not present in the intent are dropped.
	// This is how the campaign planner (internal/planner) pushes a
	// searched schedule through the same rollout path the §5.3.2 default
	// uses, and how the random-order ablation arm runs.
	Schedule [][]topo.DeviceID

	// Approval, when set, is consulted with the final wave schedule after
	// the pre-deployment checks pass and before the first device is
	// touched. An error blocks the rollout. The planner's Approver binds
	// here so a gate (qualify.Gate) can demand a planner-approved
	// schedule in front of every live push.
	Approval func(waves [][]topo.DeviceID) error

	// UnwindOnFailure restores the prior config of every device already
	// touched — in reverse deployment order, the Section 5.3.2 removal
	// order — when the rollout fails mid-campaign, so a partial push never
	// strands the fabric between states. Requires Controller.Fetch to
	// capture prior configs; without it the rollout fails in place as
	// before. The unwind is best-effort: its first error is folded into
	// the returned error.
	UnwindOnFailure bool

	// Pre and Post health checks (Section 5: controller functions 1 and 4).
	Pre, Post []HealthCheck
}

// Waves returns the deployment batches in order: devices grouped by layer,
// ordered by distance from the origin altitude (descending for deployment,
// ascending for removal), with deterministic order within a wave. An
// explicit Rollout.Schedule short-circuits the altitude derivation.
func (c *Controller) Waves(r Rollout) [][]topo.DeviceID {
	if r.Schedule != nil {
		waves := make([][]topo.DeviceID, 0, len(r.Schedule))
		for _, wave := range r.Schedule {
			var kept []topo.DeviceID
			for _, d := range wave {
				if _, ok := r.Intent[d]; ok {
					kept = append(kept, d)
				}
			}
			if len(kept) > 0 {
				waves = append(waves, kept)
			}
		}
		return waves
	}
	byDist := make(map[int][]topo.DeviceID)
	for _, d := range r.Intent.Devices() {
		dev := c.Topo.Device(d)
		if dev == nil {
			continue
		}
		dist := dev.Layer.Altitude() - r.OriginAltitude
		if dist < 0 {
			dist = -dist
		}
		byDist[dist] = append(byDist[dist], d)
	}
	dists := make([]int, 0, len(byDist))
	for d := range byDist {
		dists = append(dists, d)
	}
	sort.Ints(dists)
	if !r.Removal {
		// Deployment: farthest first.
		for i, j := 0, len(dists)-1; i < j; i, j = i+1, j-1 {
			dists[i], dists[j] = dists[j], dists[i]
		}
	}
	waves := make([][]topo.DeviceID, 0, len(dists))
	for _, d := range dists {
		waves = append(waves, byDist[d])
	}
	return waves
}

// Run executes the rollout: pre-checks, intent publication, wave-ordered
// deployment with settling between waves, then post-checks including
// straggler detection when NSDB is attached. The first error aborts.
// Run is RunCtx under a background context.
func (c *Controller) Run(r Rollout) error {
	return c.RunCtx(context.Background(), r)
}

// RunCtx is Run under a context: cancellation or deadline expiry is
// checked before every device and aborts the rollout with the context's
// error. An abort — context or otherwise — after devices have been
// touched triggers the reverse-order unwind when Rollout.UnwindOnFailure
// is set.
func (c *Controller) RunCtx(ctx context.Context, r Rollout) error {
	if c.Deploy == nil {
		return fmt.Errorf("controller: no deployment backend")
	}
	if err := r.Intent.Validate(); err != nil {
		return err
	}
	if r.UnwindOnFailure && c.Fetch == nil {
		return fmt.Errorf("controller: UnwindOnFailure needs Controller.Fetch to capture prior configs")
	}
	for _, hc := range r.Pre {
		if err := hc.Check(); err != nil {
			return fmt.Errorf("controller: pre-deployment check %q failed: %w", hc.Name, err)
		}
	}
	if r.Approval != nil {
		if err := r.Approval(c.Waves(r)); err != nil {
			return fmt.Errorf("controller: schedule approval failed: %w", err)
		}
	}
	// Publish intent so the consistency loop can detect stragglers.
	if c.DB != nil {
		for dev, cfg := range r.Intent {
			c.DB.Publish(nsdb.Intended, nsdb.DevicePath(string(dev), "rpa"), cfg.Clone())
		}
	}
	var (
		deployedSoFar []topo.DeviceID
		prior         map[topo.DeviceID]*core.Config
	)
	if r.UnwindOnFailure {
		prior = make(map[topo.DeviceID]*core.Config)
	}
	// fail wraps an error, unwinding the partial deployment first when the
	// rollout asked for it.
	fail := func(err error) error {
		if !r.UnwindOnFailure || len(deployedSoFar) == 0 {
			return err
		}
		if uerr := c.unwind(r, deployedSoFar, prior); uerr != nil {
			return fmt.Errorf("%w (unwind incomplete: %v)", err, uerr)
		}
		return fmt.Errorf("%w (unwound %d deployed device(s) to prior configs)", err, len(deployedSoFar))
	}
	for _, wave := range c.Waves(r) {
		for _, dev := range wave {
			if err := ctx.Err(); err != nil {
				return fail(fmt.Errorf("controller: rollout cancelled before %s: %w", dev, err))
			}
			if r.UnwindOnFailure {
				if cfg := c.Fetch(dev); cfg != nil {
					prior[dev] = cfg.Clone()
				}
			}
			if err := c.Deploy(dev, r.Intent[dev]); err != nil {
				return fail(fmt.Errorf("controller: deploy to %s: %w", dev, err))
			}
			c.deployments++
			deployedSoFar = append(deployedSoFar, dev)
			if c.DB != nil && !c.BackendUpdatesCurrent {
				c.DB.Publish(nsdb.Current, nsdb.DevicePath(string(dev), "rpa"), r.Intent[dev].Clone())
			}
			if r.SettlePerDevice && c.Settle != nil {
				c.Settle()
			}
		}
		if c.Settle != nil {
			c.Settle()
		}
		if r.MaxStragglerFraction > 0 && c.DB != nil {
			if frac, stragglers := c.stragglerFraction(r.Intent, deployedSoFar); frac > r.MaxStragglerFraction {
				return fail(fmt.Errorf("controller: slow-roll gate tripped: %.0f%% of deployed devices out-of-sync (%v)",
					frac*100, stragglers))
			}
		}
	}
	for _, hc := range r.Post {
		if err := hc.Check(); err != nil {
			return fail(fmt.Errorf("controller: post-deployment check %q failed: %w", hc.Name, err))
		}
	}
	if c.DB != nil {
		if stragglers := c.Stragglers(); len(stragglers) > 0 {
			return fail(fmt.Errorf("controller: %d stragglers after rollout: %v", len(stragglers), stragglers))
		}
	}
	return nil
}

// unwind restores the prior config of every deployed device in reverse
// deployment order — the Section 5.3.2 removal order, closest to the
// origin first — then settles once so the fabric reconverges on the
// pre-rollout state. Devices that carried no config before the rollout
// get an empty one (removing the RPA behavior).
func (c *Controller) unwind(r Rollout, deployed []topo.DeviceID, prior map[topo.DeviceID]*core.Config) error {
	var firstErr error
	for i := len(deployed) - 1; i >= 0; i-- {
		dev := deployed[i]
		cfg := prior[dev]
		if cfg == nil {
			cfg = &core.Config{}
		}
		if err := c.Deploy(dev, cfg); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("redeploy prior config to %s: %w", dev, err)
			}
			continue
		}
		c.deployments++
		if c.DB != nil {
			// Re-point intent at the restored config so the consistency
			// loop does not report the unwound devices as stragglers.
			c.DB.Publish(nsdb.Intended, nsdb.DevicePath(string(dev), "rpa"), cfg.Clone())
			if !c.BackendUpdatesCurrent {
				c.DB.Publish(nsdb.Current, nsdb.DevicePath(string(dev), "rpa"), cfg.Clone())
			}
		}
		if r.SettlePerDevice && c.Settle != nil {
			c.Settle()
		}
	}
	if c.Settle != nil {
		c.Settle()
	}
	return firstErr
}

// stragglerFraction computes the out-of-sync fraction among the devices
// deployed so far (the slow-roll gate's input).
func (c *Controller) stragglerFraction(intent Intent, deployed []topo.DeviceID) (float64, []topo.DeviceID) {
	if len(deployed) == 0 {
		return 0, nil
	}
	leader := c.DB.Leader()
	if leader == nil {
		return 1, deployed // no NSDB view at all: assume the worst
	}
	var stragglers []topo.DeviceID
	for _, dev := range deployed {
		path := nsdb.DevicePath(string(dev), "rpa")
		cur, ok := leader.Store.Get(nsdb.Current, path)
		if !ok {
			stragglers = append(stragglers, dev)
			continue
		}
		want, _ := leader.Store.Get(nsdb.Intended, path)
		if !jsonEqual(cur, want) {
			stragglers = append(stragglers, dev)
		}
	}
	return float64(len(stragglers)) / float64(len(deployed)), stragglers
}

func jsonEqual(a, b any) bool {
	da, errA := json.Marshal(a)
	db, errB := json.Marshal(b)
	return errA == nil && errB == nil && string(da) == string(db)
}

// Stragglers returns devices whose current RPA differs from intended — the
// continuous consistency guarantee of Section 5.1. Empty without NSDB.
func (c *Controller) Stragglers() []string {
	if c.DB == nil {
		return nil
	}
	leader := c.DB.Leader()
	if leader == nil {
		return nil
	}
	var out []string
	for _, path := range leader.Store.OutOfSync("/devices/*/rpa") {
		out = append(out, path)
	}
	return out
}
