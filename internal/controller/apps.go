package controller

import (
	"fmt"
	"regexp"

	"centralium/internal/core"
	"centralium/internal/te"
	"centralium/internal/topo"
)

// This file implements the controller's use-case applications — the "10+
// use cases including Path Selection, Traffic Engineering, and Route
// Filtering" onboarded on the application layer (Section 5.1). Each app
// compiles a high-level operator intent into per-switch RPA configs
// (controller function 2: per-switch RPA generation).

// nextVersion tags generated configs; monotonic per process.
var nextVersion int64

func version() int64 {
	nextVersion++
	return nextVersion
}

// App 1 — Path Equalization (Section 4.4.1, fixes the Figure 2 first-router
// problem): on every device of the target layers, select all paths for the
// destination learned from the device's upward peers, regardless of AS-path
// length. The per-switch peer signature is what "per-switch RPA generation"
// (Section 5, controller function 2) compiles from the high-level intent:
// scoping the set to uplinks keeps valley paths re-advertised by same- or
// lower-layer peers out of the selection.
func PathEqualizationIntent(t *topo.Topology, layers []topo.Layer, destCommunity string) Intent {
	out := make(Intent)
	for _, l := range layers {
		for _, d := range t.ByLayer(l) {
			ups := upwardNeighbors(t, d)
			if len(ups) == 0 {
				continue
			}
			out[d.ID] = &core.Config{
				Version: version(),
				PathSelection: []core.PathSelectionStatement{{
					Name:        "equalize-" + destCommunity,
					Destination: core.Destination{Community: destCommunity},
					PathSets: []core.PathSet{{
						Name:      "uplink-paths",
						Signature: core.PathSignature{PeerRegex: DeviceRegex(ups...)},
					}},
				}},
			}
		}
	}
	return out
}

// upwardNeighbors returns a device's distinct neighbors at strictly higher
// altitude (its uplinks toward the backbone), sorted.
func upwardNeighbors(t *topo.Topology, d *topo.Device) []topo.DeviceID {
	seen := make(map[topo.DeviceID]bool)
	var out []topo.DeviceID
	for _, nb := range t.Neighbors(d.ID) {
		other := t.Device(nb)
		if other == nil || seen[nb] {
			continue
		}
		if other.Layer.Altitude() > d.Layer.Altitude() {
			seen[nb] = true
			out = append(out, nb)
		}
	}
	return out
}

// App 2 — Capacity Collapse Prevention (Section 4.4.2, fixes the Figure 4
// last-router problem): on the selected devices, withdraw the destination
// when the native next-hop set drops below minPercent of full health,
// optionally keeping the FIB warm so in-flight packets survive.
// expectedNextHops pins the full-health baseline from the controller's
// topology view; zero lets each switch use its observed high-water count.
func CapacityProtectionIntent(targets []topo.DeviceID, destCommunity string, minPercent float64, keepWarm bool, expectedNextHops int) Intent {
	out := make(Intent, len(targets))
	for _, d := range targets {
		out[d] = &core.Config{
			Version: version(),
			PathSelection: []core.PathSelectionStatement{{
				Name:                     "protect-" + destCommunity,
				Destination:              core.Destination{Community: destCommunity},
				PathSets:                 []core.PathSet{}, // empty: native selection
				BgpNativeMinNextHop:      core.MinNextHop{Percent: minPercent},
				KeepFibWarmIfMnhViolated: keepWarm,
				ExpectedNextHops:         expectedNextHops,
			}},
		}
	}
	return out
}

// App 3 — Traffic Engineering (Section 6.4, Figure 13): prescribe WCMP
// weights per device from the TE optimizer's path capacities.
func TrafficEngineeringIntent(dest core.Destination, perDevice map[topo.DeviceID][]te.Path, expiresAt int64) Intent {
	out := make(Intent, len(perDevice))
	for dev, paths := range perDevice {
		w := te.Weights(paths, 0)
		st := te.BuildRouteAttributeRPA("te-weights", dest, paths, w, expiresAt)
		out[dev] = &core.Config{Version: version(), RouteAttribute: []core.RouteAttributeStatement{st}}
	}
	return out
}

// App 4 — Static WCMP / NHG protection (fixes the Figure 5 transient
// next-hop-group explosion): prescribe fixed equal weights a priori so
// peer-advertised bandwidth churn never reaches the FIB.
func StaticWCMPIntent(targets []topo.DeviceID, dest core.Destination) Intent {
	out := make(Intent, len(targets))
	for _, d := range targets {
		out[d] = &core.Config{
			Version: version(),
			RouteAttribute: []core.RouteAttributeStatement{{
				Name:        "static-wcmp",
				Destination: dest,
				NextHopWeights: []core.NextHopWeight{{
					Signature: core.PathSignature{}, // every path
					Weight:    1,
				}},
			}},
		}
	}
	return out
}

// App 5 — Boundary Route Filtering (Section 4.3): allow only the listed
// prefixes (with mask bounds) from peers matching peerRegex, at the DC /
// backbone boundary.
func BoundaryFilterIntent(targets []topo.DeviceID, peerRegex string, rules []core.PrefixRule) Intent {
	out := make(Intent, len(targets))
	for _, d := range targets {
		out[d] = &core.Config{
			Version: version(),
			RouteFilter: []core.RouteFilterStatement{{
				Name:          "boundary-allow",
				PeerSignature: peerRegex,
				Ingress:       &core.PrefixFilter{Rules: rules},
			}},
		}
	}
	return out
}

// App 6 — Egress Leak Prevention: the egress-direction twin of App 5,
// keeping more-specific prefixes from leaking upward.
func EgressFilterIntent(targets []topo.DeviceID, peerRegex string, rules []core.PrefixRule) Intent {
	out := make(Intent, len(targets))
	for _, d := range targets {
		out[d] = &core.Config{
			Version: version(),
			RouteFilter: []core.RouteFilterStatement{{
				Name:          "egress-no-leak",
				PeerSignature: peerRegex,
				Egress:        &core.PrefixFilter{Rules: rules},
			}},
		}
	}
	return out
}

// App 7 — Maintenance Drain (Table 1 category e): steer traffic off the
// named devices by giving routes through them weight zero on their peers.
// drainedRegex matches the next-hop devices being drained.
func DrainWeightIntent(peersOfDrained []topo.DeviceID, dest core.Destination, drainedRegex string) Intent {
	out := make(Intent, len(peersOfDrained))
	for _, d := range peersOfDrained {
		out[d] = &core.Config{
			Version: version(),
			RouteAttribute: []core.RouteAttributeStatement{{
				Name:        "drain",
				Destination: dest,
				NextHopWeights: []core.NextHopWeight{{
					Signature: core.PathSignature{NextHopRegex: drainedRegex},
					Weight:    0,
				}},
			}},
		}
	}
	return out
}

// App 8 — Primary/Backup Routing (Table 1 category d: "conditional primary
// and backup policies"): prefer paths via the primary next-hop set; fall
// back to backup only when the primary set is empty.
func PrimaryBackupIntent(targets []topo.DeviceID, dest core.Destination, primaryRegex, backupRegex string) Intent {
	out := make(Intent, len(targets))
	for _, d := range targets {
		out[d] = &core.Config{
			Version: version(),
			PathSelection: []core.PathSelectionStatement{{
				Name:        "primary-backup",
				Destination: dest,
				PathSets: []core.PathSet{
					{Name: "primary", Signature: core.PathSignature{NextHopRegex: primaryRegex}},
					{Name: "backup", Signature: core.PathSignature{NextHopRegex: backupRegex}},
				},
			}},
		}
	}
	return out
}

// App 9 — Anycast Stability (Table 1 category c, "special policy to
// anycast load-bearing prefixes for routing stability during maintenance"):
// keep forwarding to anycast origins only while enough distinct next hops
// exist, keeping the FIB warm to ride through convergence.
func AnycastStabilityIntent(targets []topo.DeviceID, anycastCommunity string, minNextHops int) Intent {
	out := make(Intent, len(targets))
	for _, d := range targets {
		out[d] = &core.Config{
			Version: version(),
			PathSelection: []core.PathSelectionStatement{{
				Name:        "anycast-stability",
				Destination: core.Destination{Community: anycastCommunity},
				PathSets: []core.PathSet{{
					Name:       "anycast-origins",
					Signature:  core.PathSignature{Communities: []string{anycastCommunity}},
					MinNextHop: core.MinNextHop{Count: minNextHops},
				}},
				KeepFibWarmIfMnhViolated: true,
			}},
		}
	}
	return out
}

// App 10 — Proximity Preference (Table 1 category d, "custom
// proximity-based forwarding preferences"): prefer routes originated by the
// local region's ASN, falling back to any origin.
func ProximityIntent(targets []topo.DeviceID, dest core.Destination, localOriginASN uint32) Intent {
	out := make(Intent, len(targets))
	for _, d := range targets {
		out[d] = &core.Config{
			Version: version(),
			PathSelection: []core.PathSelectionStatement{{
				Name:        "proximity",
				Destination: dest,
				PathSets: []core.PathSet{
					{Name: "local", Signature: core.PathSignature{OriginASN: localOriginASN}},
					{Name: "any", Signature: core.PathSignature{}},
				},
			}},
		}
	}
	return out
}

// App 11 — Service Isolation: refuse specific service prefixes from
// matching peers in both directions (differential traffic distribution for
// service-specific requirements).
func ServiceIsolationIntent(targets []topo.DeviceID, peerRegex string, allowed []core.PrefixRule) Intent {
	out := make(Intent, len(targets))
	for _, d := range targets {
		out[d] = &core.Config{
			Version: version(),
			RouteFilter: []core.RouteFilterStatement{{
				Name:          "service-isolation",
				PeerSignature: peerRegex,
				Ingress:       &core.PrefixFilter{Rules: allowed},
				Egress:        &core.PrefixFilter{Rules: allowed},
			}},
		}
	}
	return out
}

// App 12 — Origin Pinning: forward only to paths whose AS path ends at one
// of the given origin ASNs (routing-system-evolution guard rails while two
// route origination schemes coexist).
func OriginPinningIntent(targets []topo.DeviceID, dest core.Destination, originASNs []uint32) Intent {
	var alternation string
	for i, asn := range originASNs {
		if i > 0 {
			alternation += "|"
		}
		alternation += fmt.Sprintf("%d", asn)
	}
	sig := core.PathSignature{ASPathRegex: fmt.Sprintf("(%s)$", alternation)}
	out := make(Intent, len(targets))
	for _, d := range targets {
		out[d] = &core.Config{
			Version: version(),
			PathSelection: []core.PathSelectionStatement{{
				Name:        "origin-pinning",
				Destination: dest,
				PathSets:    []core.PathSet{{Name: "pinned-origins", Signature: sig}},
			}},
		}
	}
	return out
}

// DeviceRegex builds an anchored alternation matching exactly the given
// devices, for use in next-hop and peer signatures.
func DeviceRegex(devs ...topo.DeviceID) string {
	alternation := ""
	for i, d := range devs {
		if i > 0 {
			alternation += "|"
		}
		alternation += regexp.QuoteMeta(string(d))
	}
	return fmt.Sprintf("^(%s)$", alternation)
}
