package controller

// Deployment-order strategies beyond the §5.3.2 altitude derivation. The
// random-order schedule is the ablation arm of the Figure 10 experiment
// (E12) and one of the candidate families the campaign planner searches;
// it must be reproducible from a seed, so the shuffle draws from a local
// splitmix64 stream rather than the global math/rand source (the
// determinism lint enforces this for the whole package).

import "centralium/internal/topo"

// splitmix64 is the standard SplitMix64 step: a tiny, allocation-free,
// seedable PRNG that is identical on every platform.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform draw in [0, n) (n must be positive).
func (s *splitmix64) intn(n int) int {
	return int(s.next() % uint64(n))
}

// RandomOrderWaves builds the uncoordinated-rollout ablation schedule: one
// device per wave, in a seeded Fisher-Yates shuffle of the intent's target
// set. The same seed always yields the same order, independent of map
// iteration and worker count.
func RandomOrderWaves(in Intent, seed int64) [][]topo.DeviceID {
	devs := in.Devices()
	rng := splitmix64(seed)
	for i := len(devs) - 1; i > 0; i-- {
		j := rng.intn(i + 1)
		devs[i], devs[j] = devs[j], devs[i]
	}
	waves := make([][]topo.DeviceID, len(devs))
	for i, d := range devs {
		waves[i] = []topo.DeviceID{d}
	}
	return waves
}
