package controller

import (
	"errors"
	"strings"
	"testing"

	"centralium/internal/core"
	"centralium/internal/fabric"
	"centralium/internal/topo"
)

// layerIntent builds an empty-config intent over the given Fig10 layers.
func layerIntent(tp *topo.Topology, layers ...topo.Layer) Intent {
	in := Intent{}
	for _, l := range layers {
		for _, d := range tp.ByLayer(l) {
			in[d.ID] = &core.Config{}
		}
	}
	return in
}

// TestExecuteSequencing drives full intents through the real rollout path
// (controller.Execute) with a recording backend and asserts the §5.3.2
// layer ordering of the actual deployments — not just the Waves plan.
func TestExecuteSequencing(t *testing.T) {
	tp := topo.BuildFig10(topo.Fig10Params{FSWs: 2, SSWs: 2, FAs: 2})

	cases := []struct {
		name    string
		layers  []topo.Layer
		removal bool
		// wantLayers is the expected layer of each successive wave.
		wantLayers []topo.Layer
	}{
		{
			name:       "bottom-up deployment (§5.3.2)",
			layers:     []topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA},
			wantLayers: []topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA},
		},
		{
			name:       "removal reverses to top-down",
			layers:     []topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA},
			removal:    true,
			wantLayers: []topo.Layer{topo.LayerFA, topo.LayerSSW, topo.LayerFSW},
		},
		{
			name:       "mixed-layer intent skips absent layers",
			layers:     []topo.Layer{topo.LayerFSW, topo.LayerFA},
			wantLayers: []topo.Layer{topo.LayerFSW, topo.LayerFA},
		},
		{
			name:       "single-layer intent is one wave",
			layers:     []topo.Layer{topo.LayerSSW},
			wantLayers: []topo.Layer{topo.LayerSSW},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			intent := layerIntent(tp, tc.layers...)
			var order []topo.DeviceID
			settles := 0
			ctl := &Controller{
				Topo:   tp,
				Deploy: func(d topo.DeviceID, _ *core.Config) error { order = append(order, d); return nil },
				Settle: func() { settles++ },
			}
			err := ctl.Execute(OrchestratedChange{
				Name: tc.name,
				Rollout: Rollout{
					Intent:         intent,
					OriginAltitude: topo.LayerEB.Altitude(),
					Removal:        tc.removal,
				},
			})
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if len(order) != len(intent) {
				t.Fatalf("deployed %d devices, intent has %d", len(order), len(intent))
			}
			// Replay the deployment order against the expected layer
			// sequence: each device must belong to the current expected
			// layer, advancing when a layer's devices are exhausted.
			perLayer := map[topo.Layer]int{}
			for _, l := range tc.layers {
				perLayer[l] = len(tp.ByLayer(l))
			}
			wave, seen := 0, 0
			for _, d := range order {
				got := tp.Device(d).Layer
				if got != tc.wantLayers[wave] {
					t.Fatalf("deployment order %v: %s is layer %v, want %v", order, d, got, tc.wantLayers[wave])
				}
				seen++
				if seen == perLayer[got] {
					wave, seen = wave+1, 0
				}
			}
			if settles < len(tc.wantLayers) {
				t.Fatalf("settled %d times, want at least one per wave (%d)", settles, len(tc.wantLayers))
			}
		})
	}
}

// TestRandomOrderWaves pins the ablation arm's contract: a seeded,
// reproducible permutation, one device per wave.
func TestRandomOrderWaves(t *testing.T) {
	tp := topo.BuildFig10(topo.Fig10Params{FSWs: 2, SSWs: 2, FAs: 2})
	intent := layerIntent(tp, topo.LayerFSW, topo.LayerSSW, topo.LayerFA)

	a := RandomOrderWaves(intent, 7)
	b := RandomOrderWaves(intent, 7)
	if len(a) != len(intent) {
		t.Fatalf("waves = %d, want %d (one device per wave)", len(a), len(intent))
	}
	flatten := func(waves [][]topo.DeviceID) string {
		var parts []string
		for _, w := range waves {
			if len(w) != 1 {
				t.Fatalf("wave %v has %d devices, want 1", w, len(w))
			}
			parts = append(parts, string(w[0]))
		}
		return strings.Join(parts, ",")
	}
	if flatten(a) != flatten(b) {
		t.Fatalf("same seed, different orders:\n%s\n%s", flatten(a), flatten(b))
	}
	seen := map[topo.DeviceID]bool{}
	for _, w := range a {
		if seen[w[0]] {
			t.Fatalf("device %s appears twice", w[0])
		}
		seen[w[0]] = true
	}
	for d := range intent {
		if !seen[d] {
			t.Fatalf("device %s missing from the permutation", d)
		}
	}
	if flatten(RandomOrderWaves(intent, 8)) == flatten(a) {
		t.Fatal("seeds 7 and 8 produced the same permutation")
	}
}

// TestScheduleOverride verifies that an explicit Rollout.Schedule replaces
// the altitude derivation through the real rollout path, dropping devices
// outside the intent and empty waves.
func TestScheduleOverride(t *testing.T) {
	tp := topo.BuildFig10(topo.Fig10Params{FSWs: 2, SSWs: 2, FAs: 2})
	n := fabric.New(tp, fabric.Options{Seed: 1})
	intent := layerIntent(tp, topo.LayerFA, topo.LayerSSW)

	var order []topo.DeviceID
	ctl := &Controller{
		Topo: tp,
		Deploy: func(d topo.DeviceID, cfg *core.Config) error {
			order = append(order, d)
			return n.DeployRPA(d, cfg)
		},
		Settle: func() { n.Converge() },
	}
	schedule := [][]topo.DeviceID{
		{topo.FAID(1), "ghost"},          // ghost is not in the intent: dropped
		{topo.FSWID(0, 0)},               // whole wave outside the intent: dropped
		{topo.SSWID(0, 1)},               // explicit out-of-altitude order
		{topo.FAID(0), topo.SSWID(0, 0)}, // mixed-layer wave allowed
	}
	err := ctl.Execute(OrchestratedChange{
		Name:    "schedule override",
		Rollout: Rollout{Intent: intent, Schedule: schedule, OriginAltitude: topo.LayerEB.Altitude()},
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want := []topo.DeviceID{topo.FAID(1), topo.SSWID(0, 1), topo.FAID(0), topo.SSWID(0, 0)}
	if len(order) != len(want) {
		t.Fatalf("deployed %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("deployed %v, want %v", order, want)
		}
	}
}

// TestApprovalHook verifies the approval gate: it sees the final wave
// schedule, and a rejection blocks the rollout before any device deploys.
func TestApprovalHook(t *testing.T) {
	tp := topo.BuildFig10(topo.Fig10Params{FSWs: 2, SSWs: 2, FAs: 2})
	intent := layerIntent(tp, topo.LayerFSW, topo.LayerSSW)

	deployed := 0
	var sawWaves [][]topo.DeviceID
	reject := errors.New("not approved")
	ctl := &Controller{
		Topo:   tp,
		Deploy: func(topo.DeviceID, *core.Config) error { deployed++; return nil },
	}
	err := ctl.Run(Rollout{
		Intent:         intent,
		OriginAltitude: topo.LayerEB.Altitude(),
		Approval: func(waves [][]topo.DeviceID) error {
			sawWaves = waves
			return reject
		},
	})
	if err == nil || !errors.Is(err, reject) {
		t.Fatalf("err = %v, want the approval rejection", err)
	}
	if deployed != 0 {
		t.Fatalf("%d devices deployed despite rejection", deployed)
	}
	if len(sawWaves) != 2 {
		t.Fatalf("approval saw %d waves, want 2 (FSW, SSW)", len(sawWaves))
	}
	// Approval accepts: the rollout proceeds.
	err = ctl.Run(Rollout{
		Intent:         intent,
		OriginAltitude: topo.LayerEB.Altitude(),
		Approval:       func([][]topo.DeviceID) error { return nil },
	})
	if err != nil {
		t.Fatalf("approved rollout failed: %v", err)
	}
	if deployed != len(intent) {
		t.Fatalf("deployed %d, want %d", deployed, len(intent))
	}
}
