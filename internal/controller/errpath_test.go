package controller

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"centralium/internal/core"
	"centralium/internal/topo"
)

// recordingBackend is a deployment backend with injectable per-call
// failures: enough surface to exercise every partial-failure path of
// RunCtx and ExecuteCtx without a fabric.
type recordingBackend struct {
	configs map[topo.DeviceID]*core.Config
	// sequence records every deploy in order (including unwind deploys).
	sequence []topo.DeviceID
	calls    int
	// failOn maps a 1-based deploy call number to the error it returns.
	failOn map[int]error
	// onCall runs before each deploy (the cancellation hook).
	onCall func(call int)
}

func newRecordingBackend(prior map[topo.DeviceID]*core.Config) *recordingBackend {
	cfgs := make(map[topo.DeviceID]*core.Config)
	for d, c := range prior {
		cfgs[d] = c.Clone()
	}
	return &recordingBackend{configs: cfgs, failOn: map[int]error{}}
}

func (b *recordingBackend) deploy(d topo.DeviceID, cfg *core.Config) error {
	b.calls++
	if b.onCall != nil {
		b.onCall(b.calls)
	}
	if err := b.failOn[b.calls]; err != nil {
		return err
	}
	b.sequence = append(b.sequence, d)
	b.configs[d] = cfg.Clone()
	return nil
}

func (b *recordingBackend) fetch(d topo.DeviceID) *core.Config {
	cfg, ok := b.configs[d]
	if !ok {
		return nil
	}
	return cfg.Clone()
}

// snapshot renders the backend's deployed state for pre/post comparison.
// An empty config is the same as no config — that is how the unwind
// clears a device that carried nothing before the rollout — so empty
// entries are dropped.
func (b *recordingBackend) snapshot() map[topo.DeviceID]*core.Config {
	out := make(map[topo.DeviceID]*core.Config, len(b.configs))
	for d, c := range b.configs {
		if c.Version == 0 && len(c.PathSelection) == 0 {
			continue
		}
		out[d] = c.Clone()
	}
	return out
}

// errpathFixture is the shared rollout: four devices in two explicit
// waves, with b and c carrying prior configs and a and d bare.
func errpathFixture() (Intent, [][]topo.DeviceID, map[topo.DeviceID]*core.Config) {
	intent := Intent{
		"a": {Version: 101}, "b": {Version: 102},
		"c": {Version: 103}, "d": {Version: 104},
	}
	schedule := [][]topo.DeviceID{{"a", "b"}, {"c", "d"}}
	prior := map[topo.DeviceID]*core.Config{
		"b": {Version: 11},
		"c": {Version: 12},
	}
	return intent, schedule, prior
}

func TestRunCtxPartialFailurePaths(t *testing.T) {
	boom := errors.New("switch agent refused")
	for _, tc := range []struct {
		name string
		// arrange mutates the backend and returns the context to run under.
		arrange func(b *recordingBackend) context.Context
		unwind  bool
		wantErr []string // substrings the error must carry, in any order
		// wantPreState asserts the backend ends at the pre-rollout state.
		wantPreState bool
		// wantDeploys is the expected deploy sequence (nil to skip).
		wantDeploys []topo.DeviceID
	}{
		{
			name: "deploy fails mid-wave, unwind restores pre-state",
			arrange: func(b *recordingBackend) context.Context {
				b.failOn[3] = boom // device c, second wave
				return context.Background()
			},
			unwind:       true,
			wantErr:      []string{"deploy to c", "unwound 2 deployed device(s)"},
			wantPreState: true,
			// a, b deploy; c fails; unwind redeploys b then a (reverse).
			wantDeploys: []topo.DeviceID{"a", "b", "b", "a"},
		},
		{
			name: "deploy fails without unwind leaves partial deployment",
			arrange: func(b *recordingBackend) context.Context {
				b.failOn[3] = boom
				return context.Background()
			},
			unwind:      false,
			wantErr:     []string{"deploy to c"},
			wantDeploys: []topo.DeviceID{"a", "b"},
		},
		{
			name: "first-device failure has nothing to unwind",
			arrange: func(b *recordingBackend) context.Context {
				b.failOn[1] = boom
				return context.Background()
			},
			unwind:       true,
			wantErr:      []string{"deploy to a"},
			wantPreState: true,
			wantDeploys:  nil,
		},
		{
			name: "cancellation mid-rollout unwinds",
			arrange: func(b *recordingBackend) context.Context {
				ctx, cancel := context.WithCancel(context.Background())
				b.onCall = func(call int) {
					if call == 2 {
						cancel() // takes effect before device c
					}
				}
				return ctx
			},
			unwind:       true,
			wantErr:      []string{"cancelled before c", "unwound 2 deployed device(s)"},
			wantPreState: true,
			wantDeploys:  []topo.DeviceID{"a", "b", "b", "a"},
		},
		{
			name: "unwind failure is reported, remaining devices still restored",
			arrange: func(b *recordingBackend) context.Context {
				b.failOn[3] = boom // device c fails
				b.failOn[4] = boom // first unwind deploy (b) fails too
				return context.Background()
			},
			unwind:  true,
			wantErr: []string{"deploy to c", "unwind incomplete", "redeploy prior config to b"},
			// b's restore failed but a's still ran.
			wantDeploys: []topo.DeviceID{"a", "b", "a"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			intent, schedule, prior := errpathFixture()
			b := newRecordingBackend(prior)
			pre := b.snapshot()
			ctx := tc.arrange(b)
			c := &Controller{Deploy: b.deploy, Fetch: b.fetch}
			err := c.RunCtx(ctx, Rollout{
				Intent: intent, Schedule: schedule, UnwindOnFailure: tc.unwind,
			})
			if err == nil {
				t.Fatalf("rollout succeeded, want failure")
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q missing %q", err, want)
				}
			}
			if tc.wantPreState && !reflect.DeepEqual(b.snapshot(), pre) {
				t.Fatalf("backend not at pre-state:\n got %v\nwant %v", b.snapshot(), pre)
			}
			if tc.wantDeploys != nil || len(b.sequence) > 0 {
				if !reflect.DeepEqual(b.sequence, tc.wantDeploys) {
					t.Fatalf("deploy sequence = %v, want %v", b.sequence, tc.wantDeploys)
				}
			}
		})
	}
}

func TestRunCtxUnwindRestoresBareDevicesToEmpty(t *testing.T) {
	intent, schedule, prior := errpathFixture()
	b := newRecordingBackend(prior)
	b.failOn[4] = errors.New("boom") // device d, after a/b/c deployed
	c := &Controller{Deploy: b.deploy, Fetch: b.fetch}
	err := c.RunCtx(context.Background(), Rollout{
		Intent: intent, Schedule: schedule, UnwindOnFailure: true,
	})
	if err == nil || !strings.Contains(err.Error(), "unwound 3") {
		t.Fatalf("err = %v", err)
	}
	// a had no prior config: the unwind deploys an empty config, removing
	// the RPA behavior rather than leaving wave 1's config live.
	if got := b.configs["a"]; got == nil || got.Version != 0 || len(got.PathSelection) != 0 {
		t.Fatalf("device a after unwind = %+v, want empty config", b.configs["a"])
	}
	// b and c return to their prior versions.
	if b.configs["b"].Version != 11 || b.configs["c"].Version != 12 {
		t.Fatalf("prior configs not restored: b=%+v c=%+v", b.configs["b"], b.configs["c"])
	}
}

func TestRunCtxUnwindRequiresFetch(t *testing.T) {
	intent, schedule, _ := errpathFixture()
	b := newRecordingBackend(nil)
	c := &Controller{Deploy: b.deploy} // no Fetch
	err := c.RunCtx(context.Background(), Rollout{
		Intent: intent, Schedule: schedule, UnwindOnFailure: true,
	})
	if err == nil || !strings.Contains(err.Error(), "needs Controller.Fetch") {
		t.Fatalf("err = %v", err)
	}
	if b.calls != 0 {
		t.Fatalf("rollout touched %d device(s) despite the config error", b.calls)
	}
}

func TestRunCtxCancelledBeforeStartTouchesNothing(t *testing.T) {
	intent, schedule, prior := errpathFixture()
	b := newRecordingBackend(prior)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Controller{Deploy: b.deploy, Fetch: b.fetch}
	err := c.RunCtx(ctx, Rollout{Intent: intent, Schedule: schedule, UnwindOnFailure: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(b.sequence) != 0 {
		t.Fatalf("cancelled rollout deployed %v", b.sequence)
	}
}

func TestExecuteCtxRemovesBasePolicyOnFailure(t *testing.T) {
	for _, tc := range []struct {
		name       string
		verifyErr  error
		deployFail bool
		removeErr  error
		wantErr    []string
		wantRemove bool
	}{
		{
			name:       "rollout failure removes base policy",
			deployFail: true,
			wantErr:    []string{"deploy to a", "base policy removed"},
			wantRemove: true,
		},
		{
			name:       "verification failure removes base policy",
			verifyErr:  errors.New("community missing on eb0"),
			wantErr:    []string{"base policy verification", "base policy removed"},
			wantRemove: true,
		},
		{
			name:       "removal failure is folded into the error",
			deployFail: true,
			removeErr:  errors.New("origination pinned"),
			wantErr:    []string{"deploy to a", "base policy removal failed: origination pinned"},
			wantRemove: true,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			intent, schedule, prior := errpathFixture()
			b := newRecordingBackend(prior)
			if tc.deployFail {
				b.failOn[1] = errors.New("switch agent refused")
			}
			c := &Controller{Deploy: b.deploy, Fetch: b.fetch}
			applied, removed := false, false
			err := c.ExecuteCtx(context.Background(), OrchestratedChange{
				Name:            "guarded change",
				ApplyBasePolicy: func() error { applied = true; return nil },
				VerifyBasePolicy: func() error {
					return tc.verifyErr
				},
				RemoveBasePolicy: func() error {
					removed = true
					return tc.removeErr
				},
				Rollout: Rollout{Intent: intent, Schedule: schedule, UnwindOnFailure: true},
			})
			if err == nil {
				t.Fatalf("change succeeded, want failure")
			}
			if !applied {
				t.Fatalf("base policy never applied")
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q missing %q", err, want)
				}
			}
			if removed != tc.wantRemove {
				t.Fatalf("removed = %v, want %v", removed, tc.wantRemove)
			}
		})
	}
}

func TestExecuteCtxApplyFailureSkipsRemoval(t *testing.T) {
	c := &Controller{Deploy: func(topo.DeviceID, *core.Config) error { return nil }}
	removed := false
	err := c.ExecuteCtx(context.Background(), OrchestratedChange{
		Name:             "never applied",
		ApplyBasePolicy:  func() error { return fmt.Errorf("rejected") },
		RemoveBasePolicy: func() error { removed = true; return nil },
		Rollout:          Rollout{Intent: Intent{"a": {}}, Schedule: [][]topo.DeviceID{{"a"}}},
	})
	if err == nil || !strings.Contains(err.Error(), "base policy: rejected") {
		t.Fatalf("err = %v", err)
	}
	if removed {
		t.Fatalf("RemoveBasePolicy ran for a change whose apply failed")
	}
}
