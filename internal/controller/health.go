package controller

import (
	"fmt"
	"strings"

	"centralium/internal/openr"
	"centralium/internal/telemetry"
	"centralium/internal/topo"
)

// This file provides the standard health checks of Section 5's controller
// functions 1 and 4: management reachability over the Open/R substrate
// (pre-deployment, and the §5.2 device-failure detector) and generic
// state-expectation checks (post-deployment).

// MgmtReachabilityCheck requires every target device to be actually
// reachable (hop-by-hop probe, not just believed reachable) from the
// controller's management attachment point before a rollout proceeds.
func MgmtReachabilityCheck(dom *openr.Domain, source topo.DeviceID, targets []topo.DeviceID) HealthCheck {
	return HealthCheck{
		Name: "mgmt-reachability",
		Check: func() error {
			var dead []string
			for _, t := range targets {
				if !dom.Probe(source, t) {
					dead = append(dead, string(t))
				}
			}
			if len(dead) > 0 {
				return fmt.Errorf("%d target device(s) unreachable over management network: %s",
					len(dead), strings.Join(dead, ", "))
			}
			return nil
		},
	}
}

// DeviceFailureAlerts implements the Section 5.2 "Device Failures"
// behavior: it classifies devices a management source cannot reach into
// expected (intentionally down, e.g. drained for maintenance) and
// unexpected (alert operators).
func DeviceFailureAlerts(dom *openr.Domain, source topo.DeviceID, intendedDown map[topo.DeviceID]bool) (expected, unexpected []topo.DeviceID) {
	for _, dev := range dom.UnreachableFrom(source) {
		if intendedDown[dev] {
			expected = append(expected, dev)
		} else {
			unexpected = append(unexpected, dev)
		}
	}
	return expected, unexpected
}

// TelemetryCheck gates a rollout on the streaming telemetry plane: it
// fails when the collector's online detectors have raised any pathology
// alert (funneling, NHG pressure, route churn, black-hole suspicion). Run
// it post-deployment the way Section 5's state-expectation checks run, but
// against live transients rather than polled state.
func TelemetryCheck(c *telemetry.Collector) HealthCheck {
	return HealthCheck{
		Name: "telemetry-pathologies",
		Check: func() error {
			alerts := c.Alerts()
			if len(alerts) == 0 {
				return nil
			}
			parts := make([]string, 0, len(alerts))
			for _, a := range alerts {
				parts = append(parts, a.String())
			}
			return fmt.Errorf("%d telemetry alert(s): %s", len(alerts), strings.Join(parts, "; "))
		},
	}
}

// ExpectationCheck wraps a named boolean expectation over collected state
// (e.g. "new paths are selected", Section 5's post-deployment checks).
func ExpectationCheck(name string, ok func() (bool, string)) HealthCheck {
	return HealthCheck{
		Name: name,
		Check: func() error {
			pass, detail := ok()
			if !pass {
				return fmt.Errorf("expectation failed: %s", detail)
			}
			return nil
		},
	}
}
