package controller

import (
	"strings"
	"testing"

	"centralium/internal/core"
	"centralium/internal/openr"
	"centralium/internal/topo"
)

func TestMgmtReachabilityCheck(t *testing.T) {
	tp := topo.BuildMesh(topo.MeshParams{Planes: 2, Grids: 2, PerGroup: 2})
	dom := openr.New(tp)
	// The controller attaches at an RSW-adjacent point; use an FSW here.
	source := topo.FSWID(0, 0)
	targets := []topo.DeviceID{topo.SSWID(0, 0), topo.SSWID(1, 1)}

	hc := MgmtReachabilityCheck(dom, source, targets)
	if hc.Name != "mgmt-reachability" {
		t.Fatalf("Name = %q", hc.Name)
	}
	if err := hc.Check(); err != nil {
		t.Fatalf("healthy fleet failed check: %v", err)
	}
	// Kill a target: the check must fail and name it.
	dom.SetNodeUp(topo.SSWID(0, 0), false)
	err := hc.Check()
	if err == nil || !strings.Contains(err.Error(), string(topo.SSWID(0, 0))) {
		t.Fatalf("err = %v, want named unreachable device", err)
	}
}

func TestMgmtCheckGatesRollout(t *testing.T) {
	tp := topo.BuildMesh(topo.MeshParams{Planes: 2, Grids: 2, PerGroup: 2})
	dom := openr.New(tp)
	dom.SetNodeUp(topo.SSWID(0, 1), false)

	deployed := 0
	c := &Controller{
		Topo:   tp,
		Deploy: func(topo.DeviceID, *core.Config) error { deployed++; return nil },
	}
	intent := CapacityProtectionIntent([]topo.DeviceID{topo.SSWID(0, 1)}, "X", 75, false, 2)
	err := c.Run(Rollout{
		Intent: intent,
		Pre:    []HealthCheck{MgmtReachabilityCheck(dom, topo.FSWID(0, 0), intent.Devices())},
	})
	if err == nil || deployed != 0 {
		t.Fatalf("rollout proceeded to unreachable device: err=%v deployed=%d", err, deployed)
	}
}

func TestDeviceFailureAlerts(t *testing.T) {
	tp := topo.BuildMesh(topo.MeshParams{Planes: 2, Grids: 2, PerGroup: 2})
	dom := openr.New(tp)
	drained := topo.FADUID(0, 0)
	crashed := topo.FADUID(1, 1)
	dom.SetNodeUp(drained, false)
	dom.SetNodeUp(crashed, false)

	expected, unexpected := DeviceFailureAlerts(dom, topo.FSWID(0, 0),
		map[topo.DeviceID]bool{drained: true})
	if len(expected) != 1 || expected[0] != drained {
		t.Fatalf("expected = %v", expected)
	}
	if len(unexpected) != 1 || unexpected[0] != crashed {
		t.Fatalf("unexpected = %v, want the crashed device alerted", unexpected)
	}
}

func TestExpectationCheck(t *testing.T) {
	ok := ExpectationCheck("new-paths-selected", func() (bool, string) { return true, "" })
	if err := ok.Check(); err != nil {
		t.Fatal(err)
	}
	bad := ExpectationCheck("rib-state", func() (bool, string) { return false, "only 1 path selected" })
	err := bad.Check()
	if err == nil || !strings.Contains(err.Error(), "only 1 path") {
		t.Fatalf("err = %v", err)
	}
}
