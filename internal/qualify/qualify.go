// Package qualify implements the pre-deployment verification of Section
// 7.1: "integration tests that validate end-to-end routing intent by
// emulating a reduced-scale production network incorporating both BGP and
// the controller. These tests run whenever there is an update to the
// binaries or configuration, preventing incompatible changes from reaching
// production."
//
// A Spec bundles an emulated network, the RPA intent under qualification,
// a traffic workload, and invariants. Run deploys the intent through the
// real controller rollout path while sampling the invariants during every
// convergence transient, then re-checks them at steady state — so a change
// that is only unsafe *during* deployment (the Figure 10 class of bugs)
// fails qualification too.
package qualify

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"centralium/internal/controller"
	"centralium/internal/core"
	"centralium/internal/fabric"
	"centralium/internal/topo"
	"centralium/internal/traffic"
)

// Invariant is one property that must hold at steady state and, when
// Transient is set, throughout deployment transients.
type Invariant struct {
	Name string
	// Transient invariants are also sampled after every emulation event
	// during the rollout.
	Transient bool
	// Check inspects the network (and the workload's traffic result when
	// the spec has a workload; nil otherwise) and returns a violation
	// description, or "" when satisfied.
	Check func(n *fabric.Network, res *traffic.Result) string
}

// Spec is one qualification run.
type Spec struct {
	Name string

	// Net is the emulated network, already converged to its pre-change
	// steady state.
	Net *fabric.Network

	// Intent is the RPA change under qualification.
	Intent controller.Intent
	// OriginAltitude orders the rollout (Section 5.3.2).
	OriginAltitude int
	// Removal qualifies an RPA removal instead of a deployment.
	Removal bool

	// Workload is the traffic the invariants are evaluated under; nil
	// disables traffic-based checks.
	Workload []traffic.Demand

	Invariants []Invariant

	// Approval, when set, must approve the rollout's wave schedule before
	// any device is touched; an error fails qualification as a rollout
	// violation. The campaign planner's Approver binds here, which is how
	// a gate demands a planner-approved schedule (see internal/planner).
	Approval func(waves [][]topo.DeviceID) error

	// Schedule, when non-nil, overrides the §5.3.2 altitude-derived wave
	// order with an explicit deployment schedule (controller.Rollout
	// semantics: each inner slice is one wave; devices outside the intent
	// are dropped). centraliumd's what-if endpoint qualifies operator- or
	// planner-proposed schedules through this.
	Schedule [][]topo.DeviceID

	// SampleEvery thins transient sampling (default 1: every event).
	SampleEvery int

	// Instrument, when set, is called with the network the qualification
	// will actually run on, before any deployment. Under Gate that is the
	// what-if fork — restored taps start detached, so this is the hook for
	// re-attaching telemetry (centraliumd streams gate transients to its
	// /v1/events subscribers through it).
	Instrument func(n *fabric.Network)

	// OnReport, when set, observes the finished report. Gate's HealthCheck
	// only surfaces an error; this hook hands callers the structured
	// verdict (violations with virtual timestamps) as well.
	OnReport func(*Report)
}

// Violation is one invariant failure.
type Violation struct {
	Invariant string
	// Transient is true when the failure occurred mid-rollout; false at
	// steady state.
	Transient bool
	// At is the virtual time of the first occurrence.
	At     time.Duration
	Detail string
}

// Report is the outcome of a qualification run.
type Report struct {
	Spec       string
	Passed     bool
	Violations []Violation
	// Events is the emulation event count during the rollout.
	Events int64
}

// String renders the report for CI logs.
func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "qualification %q: %s (%d events)\n", r.Spec, verdict, r.Events)
	for _, v := range r.Violations {
		phase := "steady-state"
		if v.Transient {
			phase = fmt.Sprintf("transient @%v", v.At.Round(time.Millisecond))
		}
		fmt.Fprintf(&b, "  VIOLATION [%s] %s: %s\n", phase, v.Invariant, v.Detail)
	}
	return b.String()
}

// Run executes the qualification: deploy the intent through the controller
// (per-device settling, sampling transient invariants after every event),
// then evaluate all invariants at steady state.
func Run(spec Spec) (*Report, error) {
	if spec.Net == nil {
		return nil, fmt.Errorf("qualify: spec %q has no network", spec.Name)
	}
	if spec.SampleEvery <= 0 {
		spec.SampleEvery = 1
	}
	rep := &Report{Spec: spec.Name, Passed: true}
	n := spec.Net
	if spec.Instrument != nil {
		spec.Instrument(n)
	}
	pr := &traffic.Propagator{Net: n}

	evaluate := func(transient bool) {
		var res *traffic.Result
		if spec.Workload != nil {
			res = pr.Run(spec.Workload)
		}
		for _, inv := range spec.Invariants {
			if transient && !inv.Transient {
				continue
			}
			if detail := inv.Check(n, res); detail != "" {
				if transient && alreadySeen(rep, inv.Name, true) {
					continue // record only the first transient occurrence
				}
				rep.Passed = false
				rep.Violations = append(rep.Violations, Violation{
					Invariant: inv.Name,
					Transient: transient,
					At:        time.Duration(n.Now()),
					Detail:    detail,
				})
			}
		}
	}

	samples := 0
	n.OnEvent(func(int64) {
		samples++
		if samples%spec.SampleEvery == 0 {
			evaluate(true)
		}
	})

	ctl := &controller.Controller{
		Topo:   n.Topo,
		Deploy: func(dev topo.DeviceID, cfg *core.Config) error { return n.DeployRPA(dev, cfg) },
		Settle: func() { rep.Events += n.Converge() },
	}
	err := ctl.Run(controller.Rollout{
		Intent:          spec.Intent,
		OriginAltitude:  spec.OriginAltitude,
		Removal:         spec.Removal,
		SettlePerDevice: true,
		Schedule:        spec.Schedule,
		Approval:        spec.Approval,
	})
	if err != nil {
		rep.Passed = false
		rep.Violations = append(rep.Violations, Violation{
			Invariant: "rollout",
			Detail:    err.Error(),
			At:        time.Duration(n.Now()),
		})
		if spec.OnReport != nil {
			spec.OnReport(rep)
		}
		return rep, nil
	}
	rep.Events += n.Converge()
	evaluate(false)
	if spec.OnReport != nil {
		spec.OnReport(rep)
	}
	return rep, nil
}

func alreadySeen(rep *Report, name string, transient bool) bool {
	for _, v := range rep.Violations {
		if v.Invariant == name && v.Transient == transient {
			return true
		}
	}
	return false
}

// --- Standard invariants ----------------------------------------------------

// NoBlackholes requires full delivery of the workload.
func NoBlackholes() Invariant {
	return Invariant{
		Name:      "no-blackholes",
		Transient: true,
		Check: func(_ *fabric.Network, res *traffic.Result) string {
			if res == nil {
				return ""
			}
			if bh := res.BlackholedFraction(); bh > 1e-9 {
				return fmt.Sprintf("%.1f%% of traffic black-holed", bh*100)
			}
			return ""
		},
	}
}

// NoLoops requires no circulating traffic.
func NoLoops() Invariant {
	return Invariant{
		Name:      "no-forwarding-loops",
		Transient: true,
		Check: func(_ *fabric.Network, res *traffic.Result) string {
			if res == nil || !res.HasLoop() {
				return ""
			}
			return fmt.Sprintf("%.2f units of traffic circulating", res.Looped)
		},
	}
}

// FunnelBound caps any single listed device's share of the workload.
func FunnelBound(devices []topo.DeviceID, maxShare float64) Invariant {
	return Invariant{
		Name:      fmt.Sprintf("funnel-bound-%.0f%%", maxShare*100),
		Transient: true,
		Check: func(_ *fabric.Network, res *traffic.Result) string {
			if res == nil {
				return ""
			}
			dev, share := res.MaxDeviceShare(devices)
			if share > maxShare {
				return fmt.Sprintf("%s carries %.1f%% of traffic (bound %.1f%%)", dev, share*100, maxShare*100)
			}
			return ""
		},
	}
}

// MinPaths requires a device to hold at least n next hops for a prefix at
// steady state (the "expected changes to RIB and FIB, e.g. new paths are
// selected" post-check of Section 5).
func MinPaths(dev topo.DeviceID, prefixStr string, min int) Invariant {
	return Invariant{
		Name: fmt.Sprintf("min-paths-%s", dev),
		Check: func(n *fabric.Network, _ *traffic.Result) string {
			p, err := parsePrefix(prefixStr)
			if err != nil {
				return err.Error()
			}
			if got := len(n.NextHopWeights(dev, p)); got < min {
				return fmt.Sprintf("%s has %d path(s) to %s, want >= %d", dev, got, prefixStr, min)
			}
			return ""
		},
	}
}

// MaxLinkUtilization caps post-change utilization.
func MaxLinkUtilization(bound float64) Invariant {
	return Invariant{
		Name: fmt.Sprintf("max-link-utilization-%.2f", bound),
		Check: func(n *fabric.Network, res *traffic.Result) string {
			if res == nil {
				return ""
			}
			if u := res.MaxUtilization(n.Topo); u > bound {
				return fmt.Sprintf("max link utilization %.3f exceeds %.3f", u, bound)
			}
			return ""
		},
	}
}

func parsePrefix(s string) (netip.Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("qualify: bad prefix %q: %v", s, err)
	}
	return p, nil
}
