package qualify

import (
	"bytes"
	"strings"
	"testing"

	"centralium/internal/controller"
	"centralium/internal/core"
	"centralium/internal/fabric"
	"centralium/internal/migrate"
	"centralium/internal/snapshot"
	"centralium/internal/topo"
	"centralium/internal/traffic"
)

func fingerprintNet(t *testing.T, n *fabric.Network) []byte {
	t.Helper()
	snap, err := snapshot.Capture(n)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestWhatIfGateBlocksHazardousRollout is the acceptance path for the
// what-if gate: the Figure 10 uncoordinated-rollout hazard (equalization
// RPA pushed top-down) is caught on a fork of the live fabric, the real
// push is blocked, and the live network stays byte-for-byte untouched.
func TestWhatIfGateBlocksHazardousRollout(t *testing.T) {
	n := fig10Net(3)
	before := fingerprintNet(t, n)

	intent := controller.PathEqualizationIntent(n.Topo,
		[]topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA}, migrate.BackboneCommunity)
	spec := Spec{
		Name:           "equalization-top-down",
		Net:            n,
		Intent:         intent,
		OriginAltitude: topo.LayerEB.Altitude(),
		Removal:        true, // top-down: the hazardous order
		Workload:       traffic.UniformDemands(n.Topo.ByLayer(topo.LayerFSW), migrate.DefaultRoute, 100),
		Invariants: []Invariant{
			NoBlackholes(),
			FunnelBound(fas(), 0.75),
		},
	}

	ctl := &controller.Controller{
		Topo:   n.Topo,
		Deploy: func(dev topo.DeviceID, cfg *core.Config) error { return n.DeployRPA(dev, cfg) },
		Settle: func() { n.Converge() },
	}
	err := ctl.Run(controller.Rollout{
		Intent:         intent,
		OriginAltitude: topo.LayerEB.Altitude(),
		Removal:        true,
		Pre:            []controller.HealthCheck{Gate(spec)},
	})
	if err == nil {
		t.Fatal("hazardous rollout passed the what-if gate")
	}
	if !strings.Contains(err.Error(), "pre-deployment check") ||
		!strings.Contains(err.Error(), "funnel-bound") {
		t.Fatalf("unexpected gate error: %v", err)
	}
	if ctl.Deployments() != 0 {
		t.Fatalf("gate blocked the rollout but %d devices were deployed", ctl.Deployments())
	}
	after := fingerprintNet(t, n)
	if !bytes.Equal(before, after) {
		t.Fatal("what-if simulation leaked into the live network")
	}
}

// TestWhatIfGatePassesSafeRollout: the same intent in the safe bottom-up
// order clears the gate and the live rollout proceeds.
func TestWhatIfGatePassesSafeRollout(t *testing.T) {
	n := fig10Net(3)
	intent := controller.PathEqualizationIntent(n.Topo,
		[]topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA}, migrate.BackboneCommunity)
	spec := Spec{
		Name:           "equalization-bottom-up",
		Net:            n,
		Intent:         intent,
		OriginAltitude: topo.LayerEB.Altitude(),
		Workload:       traffic.UniformDemands(n.Topo.ByLayer(topo.LayerFSW), migrate.DefaultRoute, 100),
		Invariants: []Invariant{
			NoBlackholes(),
			NoLoops(),
			FunnelBound(fas(), 0.75),
			MinPaths(topo.FAID(0), "0.0.0.0/0", 2),
		},
	}

	ctl := &controller.Controller{
		Topo:   n.Topo,
		Deploy: func(dev topo.DeviceID, cfg *core.Config) error { return n.DeployRPA(dev, cfg) },
		Settle: func() { n.Converge() },
	}
	err := ctl.Run(controller.Rollout{
		Intent:         intent,
		OriginAltitude: topo.LayerEB.Altitude(),
		Pre:            []controller.HealthCheck{Gate(spec)},
	})
	if err != nil {
		t.Fatalf("safe rollout blocked: %v", err)
	}
	if ctl.Deployments() == 0 {
		t.Fatal("gate passed but nothing deployed")
	}
	// The live network now carries the RPA on every target.
	for _, dev := range intent.Devices() {
		if n.Speaker(dev).Stats().RPASelections == 0 && n.Speaker(dev).RPAConfig() == nil {
			t.Fatalf("%s has no RPA after the gated rollout", dev)
		}
	}
}
