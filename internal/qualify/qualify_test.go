package qualify

import (
	"strings"
	"testing"

	"centralium/internal/controller"
	"centralium/internal/core"
	"centralium/internal/fabric"
	"centralium/internal/migrate"
	"centralium/internal/topo"
	"centralium/internal/traffic"
)

// fig10Net builds the Figure 10 topology, converged, with the backbone
// default route.
func fig10Net(seed int64) *fabric.Network {
	tp := topo.BuildFig10(topo.Fig10Params{FSWs: 2, SSWs: 2, FAs: 2})
	n := fabric.New(tp, fabric.Options{Seed: seed})
	n.OriginateAt(topo.EBID(0), migrate.DefaultRoute, []string{migrate.BackboneCommunity}, 0)
	n.Converge()
	return n
}

func fas() []topo.DeviceID { return []topo.DeviceID{topo.FAID(0), topo.FAID(1)} }

func TestQualifyPassesSafeRollout(t *testing.T) {
	n := fig10Net(3)
	intent := controller.PathEqualizationIntent(n.Topo,
		[]topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA}, migrate.BackboneCommunity)
	rep, err := Run(Spec{
		Name:           "equalization-bottom-up",
		Net:            n,
		Intent:         intent,
		OriginAltitude: topo.LayerEB.Altitude(),
		Workload:       traffic.UniformDemands(n.Topo.ByLayer(topo.LayerFSW), migrate.DefaultRoute, 100),
		Invariants: []Invariant{
			NoBlackholes(),
			NoLoops(),
			FunnelBound(fas(), 0.75),
			MinPaths(topo.FAID(0), "0.0.0.0/0", 2), // post-change: direct + DMAG
			MaxLinkUtilization(1.0),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("safe rollout failed qualification:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "PASS") {
		t.Fatalf("report = %q", rep)
	}
	if rep.Events == 0 {
		t.Fatal("no events counted")
	}
}

func TestQualifyCatchesTransientFunnel(t *testing.T) {
	// The same intent deployed top-down (the Figure 10 hazard) must FAIL
	// qualification on the transient funnel bound — this is exactly the
	// class of bug §7.1's emulation suite exists to stop.
	n := fig10Net(3)
	intent := controller.PathEqualizationIntent(n.Topo,
		[]topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA}, migrate.BackboneCommunity)
	rep, err := Run(Spec{
		Name:           "equalization-top-down",
		Net:            n,
		Intent:         intent,
		OriginAltitude: topo.LayerEB.Altitude(),
		Removal:        true, // reverses wave order: FA layer first
		Workload:       traffic.UniformDemands(n.Topo.ByLayer(topo.LayerFSW), migrate.DefaultRoute, 100),
		Invariants: []Invariant{
			NoBlackholes(),
			FunnelBound(fas(), 0.75),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatalf("unsafe rollout passed qualification:\n%s", rep)
	}
	foundTransient := false
	for _, v := range rep.Violations {
		if v.Transient && strings.Contains(v.Invariant, "funnel-bound") {
			foundTransient = true
			if v.At <= 0 {
				t.Error("violation has no timestamp")
			}
		}
	}
	if !foundTransient {
		t.Fatalf("expected a transient funnel violation:\n%s", rep)
	}
	// Transient violations are deduplicated to the first occurrence.
	count := 0
	for _, v := range rep.Violations {
		if v.Transient && strings.Contains(v.Invariant, "funnel-bound") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("transient violation recorded %d times, want 1", count)
	}
	if !strings.Contains(rep.String(), "FAIL") || !strings.Contains(rep.String(), "transient") {
		t.Fatalf("report = %q", rep)
	}
}

func TestQualifyCatchesSteadyStateViolation(t *testing.T) {
	// An intent that does NOT deliver the expected RIB change fails the
	// MinPaths post-check: here we "deploy" an empty config and demand the
	// FA use two paths, which native selection will not do.
	n := fig10Net(5)
	rep, err := Run(Spec{
		Name:           "expectation-miss",
		Net:            n,
		Intent:         controller.Intent{topo.FAID(0): {}},
		OriginAltitude: topo.LayerEB.Altitude(),
		Invariants: []Invariant{
			MinPaths(topo.FAID(0), "0.0.0.0/0", 2),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("expectation miss passed")
	}
	if rep.Violations[0].Transient {
		t.Fatal("steady-state violation marked transient")
	}
}

func TestQualifyRejectsInvalidIntent(t *testing.T) {
	n := fig10Net(1)
	rep, err := Run(Spec{
		Name:   "invalid-config",
		Net:    n,
		Intent: controller.Intent{topo.FAID(0): {PathSelection: []core.PathSelectionStatement{{Name: ""}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("invalid intent passed qualification")
	}
	if rep.Violations[0].Invariant != "rollout" {
		t.Fatalf("violations = %+v", rep.Violations)
	}
}

func TestQualifyNoNetwork(t *testing.T) {
	if _, err := Run(Spec{Name: "empty"}); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestInvariantEdgeCases(t *testing.T) {
	// Invariants tolerate a nil traffic result (no workload configured).
	for _, inv := range []Invariant{NoBlackholes(), NoLoops(), FunnelBound(nil, 0.5), MaxLinkUtilization(1)} {
		if got := inv.Check(nil, nil); got != "" {
			t.Errorf("%s with nil result = %q", inv.Name, got)
		}
	}
	// MinPaths surfaces a bad prefix string as a violation detail.
	n := fig10Net(2)
	inv := MinPaths(topo.FAID(0), "bogus", 1)
	if got := inv.Check(n, nil); !strings.Contains(got, "bad prefix") {
		t.Errorf("bad prefix detail = %q", got)
	}
}
