package qualify

import (
	"fmt"

	"centralium/internal/controller"
	"centralium/internal/fabric"
)

// Gate packages a qualification spec as a controller pre-deployment check.
// At check time the spec's network is what-if forked (checkpoint/restore of
// its full state), the intent is deployed on the fork through the real
// rollout path with transient invariant sampling, and any violation —
// transient or steady-state — blocks the live push with the full report in
// the error. The live network never sees the simulated deployment.
//
// This closes the Section 7.1 loop: the same invariant suite that
// qualifies binaries offline runs as an inline gate in front of every
// production rollout, against the fleet's current state rather than a
// canned scenario.
func Gate(spec Spec) controller.HealthCheck {
	return controller.WhatIf(spec.Name, spec.Net, func(fork *fabric.Network) error {
		forked := spec
		forked.Net = fork
		rep, err := Run(forked)
		if err != nil {
			return err
		}
		if !rep.Passed {
			return fmt.Errorf("qualification failed on fork:\n%s", rep)
		}
		return nil
	})
}
