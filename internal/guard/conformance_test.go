package guard

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"centralium/internal/chaos"
	"centralium/internal/fabric"
	"centralium/internal/migrate"
	"centralium/internal/planner"
	"centralium/internal/snapshot"
	"centralium/internal/topo"
)

// The chaos-guard conformance suite: across conformanceSeeds seeds and
// two fault-plan families injected mid-campaign, every guarded run must
// terminate completed-safe or rolled-back-to-last-good — never in a
// violated terminal state — with the terminal fleet passing the full
// quiescent invariant sweep, and with byte-identical guard decision logs
// at engine widths 1 and 4.
const conformanceSeeds = 20

// faultPlan is one conformance arm: a named way of disturbing a
// campaign. Instrument arms the faults on the attempt's fork.
type faultPlan struct {
	name string
	// instrument builds the campaign's Instrument hook for a seed. The
	// hook must be a pure function of (wave, attempt) so a resumed run
	// replays it identically.
	instrument func(t *testing.T, seed int64, base *snapshot.Snapshot) func(n *fabric.Network, wave, attempt int)
}

// chaosPlanArm draws a seeded chaos fault plan and injects it during
// wave 1's first attempt only: transient turbulence the retry loop must
// absorb. Depending on what the seed drew (a delay-only plan never drops
// a session), the campaign either completes directly or rolls back once
// and completes on the clean retry.
func chaosPlanArm(t *testing.T, seed int64, base *snapshot.Snapshot) func(n *fabric.Network, wave, attempt int) {
	t.Helper()
	// Derive the plan against the base fleet: deterministic in the seed,
	// independent of campaign progress.
	ref, err := base.Restore()
	if err != nil {
		t.Fatalf("restore for plan: %v", err)
	}
	plan := chaos.NewPlan(ref, seed, chaos.PlanOptions{Count: 3, Span: 10 * time.Millisecond})
	return func(n *fabric.Network, wave, attempt int) {
		if wave == 1 && attempt == 0 {
			chaos.NewInjector(n, plan, 0).Arm()
		}
	}
}

// stormArm deterministically restarts a spine on every attempt of wave
// 1: the violation persists through the whole retry budget, so the
// campaign must quarantine and abort, rolled back to last-good.
func stormArm(t *testing.T, seed int64, base *snapshot.Snapshot) func(n *fabric.Network, wave, attempt int) {
	return func(n *fabric.Network, wave, attempt int) {
		if wave == 1 {
			n.After(time.Millisecond, func() {
				n.RestartDevice(topo.SSWID(0, 0), 2*time.Millisecond, false)
			})
		}
	}
}

func TestChaosGuardConformance(t *testing.T) {
	plans := []faultPlan{
		{name: "chaos", instrument: chaosPlanArm},
		{name: "storm", instrument: stormArm},
	}
	var (
		completed, aborted, rollbacks int
		stormAborts                   int
	)
	for seed := int64(1); seed <= conformanceSeeds; seed++ {
		snap, p, err := planner.ScenarioSetup("fig10", seed)
		if err != nil {
			t.Fatalf("seed %d: setup: %v", seed, err)
		}
		for _, plan := range plans {
			var logs [2]string
			var states [2]State
			var fps [2]string
			for i, workers := range []int{1, 4} {
				c := FromParams(p)
				c.Name = "conformance"
				c.Workers = workers
				c.Instrument = plan.instrument(t, seed, snap)
				res, err := Run(context.Background(), snap, c)
				if err != nil {
					t.Fatalf("seed %d plan %s workers %d: %v", seed, plan.name, workers, err)
				}
				// Terminal-state invariant: completed-safe or rolled back
				// to last-good — never anything else.
				if res.State != StateCompleted && res.State != StateAborted {
					t.Fatalf("seed %d plan %s: terminal state %s\nlog:\n%s", seed, plan.name, res.State, res.Log)
				}
				// The terminal fleet passes the full quiescent sweep: no
				// loops, no black holes, sane weights.
				if sweep := chaos.CheckQuiescent(chaos.CheckConfig{
					Net:      res.Net,
					Demands:  c.Demands,
					Prefixes: []netip.Prefix{migrate.DefaultRoute},
				}); len(sweep) > 0 {
					t.Fatalf("seed %d plan %s: terminal sweep dirty: %v\nlog:\n%s", seed, plan.name, sweep, res.Log)
				}
				logs[i] = res.Log
				states[i] = res.State
				fp, err := res.Snapshot.Fingerprint()
				if err != nil {
					t.Fatalf("seed %d plan %s: fingerprint: %v", seed, plan.name, err)
				}
				fps[i] = fp
				if i == 1 {
					continue
				}
				switch res.State {
				case StateCompleted:
					completed++
				case StateAborted:
					aborted++
					if plan.name == "storm" {
						stormAborts++
					}
				}
				rollbacks += res.Rollbacks
			}
			if logs[0] != logs[1] {
				t.Fatalf("seed %d plan %s: decision logs diverge across widths\n--- w=1 ---\n%s\n--- w=4 ---\n%s",
					seed, plan.name, logs[0], logs[1])
			}
			if states[0] != states[1] || fps[0] != fps[1] {
				t.Fatalf("seed %d plan %s: terminal state diverges across widths: %s/%s vs %s/%s",
					seed, plan.name, states[0], short(fps[0]), states[1], short(fps[1]))
			}
		}
	}
	// Vacuousness guards: the sweep must exercise both terminal classes
	// and the remediation machinery, or the invariant proves nothing.
	if stormAborts != conformanceSeeds {
		t.Fatalf("storm plan aborted %d/%d campaigns; the quarantine path is undertested", stormAborts, conformanceSeeds)
	}
	if completed == 0 {
		t.Fatalf("no campaign completed; the clean path is untested")
	}
	if rollbacks == 0 {
		t.Fatalf("no campaign rolled back; the remediation path is untested")
	}
	t.Logf("conformance: %d completed, %d aborted, %d rollbacks across %d seeds x %d plans",
		completed, aborted, rollbacks, conformanceSeeds, len(plans))
}
