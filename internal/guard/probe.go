package guard

import (
	"fmt"

	"centralium/internal/fabric"
	"centralium/internal/telemetry"
	"centralium/internal/traffic"
)

// WaveMetrics is one wave attempt's measured transient — the guard's
// evidence base. It mirrors the planner's StepOutcome with the offender
// attribution the quarantine decision needs on top.
type WaveMetrics struct {
	// BlackholeNs is the integrated virtual time the workload's
	// black-holed fraction exceeded epsilon.
	BlackholeNs int64 `json:"blackhole_ns"`
	// PeakShare is the worst transient share on a watched device;
	// ShareDevice is the device that carried it.
	PeakShare   float64 `json:"peak_share"`
	ShareDevice string  `json:"share_device,omitempty"`
	// ConvergeNs is the wave's total virtual settle time.
	ConvergeNs int64 `json:"converge_ns"`
	// PeakNHG is the worst next-hop-group occupancy in FIB writes;
	// NHGDevice wrote it.
	PeakNHG   int    `json:"peak_nhg"`
	NHGDevice string `json:"nhg_device,omitempty"`
	// Churn counts routing events (Adj-RIB-In + best path).
	Churn int64 `json:"churn"`
	// SessionDowns counts BGP session-down events; DownDevices lists the
	// devices that reported them, in first-seen order.
	SessionDowns int64    `json:"session_downs"`
	DownDevices  []string `json:"down_devices,omitempty"`
	// Alerts counts detector alerts; AlertTags holds up to alertTagCap
	// "detector:device" tags in fire order, AlertDevices the devices.
	Alerts       int      `json:"alerts"`
	AlertTags    []string `json:"alert_tags,omitempty"`
	AlertDevices []string `json:"alert_devices,omitempty"`
	// Events is the engine event count the attempt consumed.
	Events int64 `json:"events"`
}

// alertTagCap bounds the alert evidence carried into violation details.
const alertTagCap = 6

// String is the decision log's metrics line.
func (m WaveMetrics) String() string {
	return fmt.Sprintf("blackhole=%.2fms share=%.3f converge=%.2fms nhg=%d churn=%d session-downs=%d alerts=%d",
		float64(m.BlackholeNs)/1e6, m.PeakShare, float64(m.ConvergeNs)/1e6,
		m.PeakNHG, m.Churn, m.SessionDowns, m.Alerts)
}

// probe instruments one wave attempt's fork: it taps the fabric into a
// pathology collector and samples the workload on every engine event,
// exactly as the planner's evaluation probe does — the guard judges a
// live wave by the same metrics the planner scored it by. Attaching an
// event hook forces the engine into serial stepping, so measurement is
// deterministic at any worker width.
type probe struct {
	c         *Campaign
	net       *fabric.Network
	pr        *traffic.Propagator
	col       *telemetry.Collector
	m         WaveMetrics
	startNow  int64
	lastNow   int64
	lastBlack bool
	samples   int64
	downSeen  map[string]bool
	alertSeen map[string]bool
}

func newProbe(n *fabric.Network, c *Campaign) *probe {
	pb := &probe{
		c: c, net: n,
		pr:        &traffic.Propagator{Net: n},
		downSeen:  make(map[string]bool),
		alertSeen: make(map[string]bool),
	}
	pb.col = telemetry.NewCollector(telemetry.CollectorOptions{
		Detectors: telemetry.StandardDetectors(),
		OnEvent: func(ev telemetry.Event) {
			switch ev.Kind {
			case telemetry.KindFIBWrite:
				if ev.NHGroups > pb.m.PeakNHG {
					pb.m.PeakNHG = ev.NHGroups
					pb.m.NHGDevice = ev.Device
				}
			case telemetry.KindAdjRIBIn, telemetry.KindBestPath:
				pb.m.Churn++
			case telemetry.KindSessionDown:
				pb.m.SessionDowns++
				if !pb.downSeen[ev.Device] {
					pb.downSeen[ev.Device] = true
					pb.m.DownDevices = append(pb.m.DownDevices, ev.Device)
				}
			}
		},
		OnAlert: func(a telemetry.Alert) {
			pb.m.Alerts++
			if len(pb.m.AlertTags) < alertTagCap {
				pb.m.AlertTags = append(pb.m.AlertTags, a.Detector+":"+a.Device)
			}
			if !pb.alertSeen[a.Device] {
				pb.alertSeen[a.Device] = true
				pb.m.AlertDevices = append(pb.m.AlertDevices, a.Device)
			}
		},
	})
	n.SetTap(pb.col)
	pb.startNow = n.Now()
	pb.lastNow = pb.startNow
	n.OnEvent(func(now int64) { pb.observe(now) })
	return pb
}

// observe is the per-event sampler, thinned by SampleEvery.
func (pb *probe) observe(now int64) {
	pb.samples++
	if pb.samples%int64(pb.c.SampleEvery) != 0 {
		return
	}
	pb.sampleAt(now)
}

// sampleAt measures the workload at one instant: integrate the black-hole
// window since the previous sample under its verdict, then re-sample.
func (pb *probe) sampleAt(now int64) {
	if pb.lastBlack && now > pb.lastNow {
		pb.m.BlackholeNs += now - pb.lastNow
	}
	res := pb.pr.Run(pb.c.Demands)
	dev, share := res.MaxDeviceShare(pb.c.Watch)
	if share > pb.m.PeakShare {
		pb.m.PeakShare = share
		pb.m.ShareDevice = string(dev)
	}
	bh := res.BlackholedFraction()
	pb.lastBlack = bh > pb.c.BlackholeEps
	pb.lastNow = now
	pb.col.Emit(telemetry.Event{
		Kind:       telemetry.KindTrafficSample,
		Time:       now,
		Device:     string(dev),
		Share:      share,
		FairShare:  pb.c.FairShare,
		Blackholed: bh,
	})
}

// finish closes the measurement window: the settled end state is always
// sampled, so even a no-op wave answers for the state it leaves behind.
func (pb *probe) finish(events int64) WaveMetrics {
	now := pb.net.Now()
	pb.sampleAt(now)
	pb.m.ConvergeNs = now - pb.startNow
	pb.m.Events = events
	return pb.m
}
