package guard

import (
	"context"
	"strings"
	"testing"
	"time"

	"centralium/internal/planner"
)

func TestEnvelopeSpecRoundTrip(t *testing.T) {
	cases := []Envelope{
		{},
		DefaultEnvelope(),
		{MaxPeakShare: 0.6},
		{MaxPeakShare: -1, MaxChurn: -1},
		{
			MaxBlackholeNs:  2e6,
			MaxPeakShare:    0.75,
			MaxConvergeNs:   50e6,
			MaxPeakNHG:      8,
			MaxChurn:        1000,
			MaxSessionDowns: 3,
			MaxAlerts:       2,
		},
		{MaxBlackholeNs: -1, MaxConvergeNs: -1, MaxPeakNHG: -1, MaxSessionDowns: -1, MaxAlerts: -1},
	}
	for _, e := range cases {
		spec := e.Spec()
		got, err := ParseEnvelope(spec)
		if err != nil {
			t.Fatalf("ParseEnvelope(%q): %v", spec, err)
		}
		if got != e {
			t.Errorf("round trip %q: got %+v, want %+v", spec, got, e)
		}
		// Spec is a fixed point: rendering the parsed form changes nothing.
		if again := got.Spec(); again != spec {
			t.Errorf("Spec not a fixed point: %q -> %q", spec, again)
		}
	}
	if s := (Envelope{}).Spec(); s != "" {
		t.Errorf("zero envelope Spec = %q, want empty", s)
	}
}

func TestParseEnvelopeTolerantSyntax(t *testing.T) {
	e, err := ParseEnvelope("  share = 0.5 ,, churn=10 , ")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if e.MaxPeakShare != 0.5 || e.MaxChurn != 10 {
		t.Errorf("parsed %+v", e)
	}
	if e, err := ParseEnvelope("   "); err != nil || e != (Envelope{}) {
		t.Errorf("blank spec: %+v, %v", e, err)
	}
}

func TestParseEnvelopeRejects(t *testing.T) {
	for _, spec := range []string{
		"share",        // no '='
		"share=abc",    // non-numeric
		"share=-1",     // negative (zero-bound is spelled 0)
		"turbulence=1", // unknown key
	} {
		if _, err := ParseEnvelope(spec); err == nil {
			t.Errorf("ParseEnvelope(%q) did not error", spec)
		}
	}
}

func TestEnvelopeString(t *testing.T) {
	if s := (Envelope{}).String(); s != "unbounded" {
		t.Errorf("zero envelope String = %q", s)
	}
	if s := DefaultEnvelope().String(); s != "blackhole<=5.00ms session-downs<=0" {
		t.Errorf("default envelope String = %q", s)
	}
	full := Envelope{
		MaxBlackholeNs: 1e6, MaxPeakShare: 0.6, MaxConvergeNs: 10e6,
		MaxPeakNHG: 4, MaxChurn: 100, MaxSessionDowns: -1, MaxAlerts: 1,
	}
	want := "blackhole<=1.00ms share<=0.600 converge<=10.00ms nhg<=4 churn<=100 session-downs<=0 alerts<=1"
	if s := full.String(); s != want {
		t.Errorf("full envelope String = %q, want %q", s, want)
	}
}

func TestViolationsEachCheck(t *testing.T) {
	full := Envelope{
		MaxBlackholeNs: 1e6, MaxPeakShare: 0.5, MaxConvergeNs: 10e6,
		MaxPeakNHG: 4, MaxChurn: 100, MaxSessionDowns: -1, MaxAlerts: -1,
	}
	hot := WaveMetrics{
		BlackholeNs: 2e6,
		PeakShare:   0.9, ShareDevice: "fsw-0",
		ConvergeNs: 20e6,
		PeakNHG:    8, NHGDevice: "ssw-1",
		Churn:        500,
		SessionDowns: 2, DownDevices: []string{"ssw-1", "fsw-0"},
		Alerts: 1, AlertDevices: []string{"rsw-2"}, AlertTags: []string{"blackhole:rsw-2"},
	}
	vs := full.Violations(hot)
	var checks []string
	for _, v := range vs {
		checks = append(checks, v.Check)
	}
	want := "blackhole share converge nhg churn session-downs alerts"
	if got := strings.Join(checks, " "); got != want {
		t.Fatalf("violation checks = %q, want %q", got, want)
	}
	// Attribution: single-device checks carry the offender, session-downs
	// sorts its device list, fleet-wide checks name nobody.
	if len(vs[0].Devices) != 0 {
		t.Errorf("blackhole violation names devices: %v", vs[0].Devices)
	}
	if len(vs[1].Devices) != 1 || vs[1].Devices[0] != "fsw-0" {
		t.Errorf("share violation devices = %v", vs[1].Devices)
	}
	if len(vs[5].Devices) != 2 || vs[5].Devices[0] != "fsw-0" || vs[5].Devices[1] != "ssw-1" {
		t.Errorf("session-downs devices not sorted: %v", vs[5].Devices)
	}
	if !strings.Contains(vs[6].Detail, "blackhole:rsw-2") {
		t.Errorf("alerts detail missing tag evidence: %q", vs[6].Detail)
	}
	// Violation.String carries the attribution when present.
	if s := vs[1].String(); s != "share [fsw-0]: peak share 0.900 > limit 0.500" {
		t.Errorf("violation string = %q", s)
	}
	if s := vs[0].String(); !strings.HasPrefix(s, "blackhole: ") {
		t.Errorf("fleet-wide violation string = %q", s)
	}

	// The same hot metrics pass a fully disabled envelope, and in-bounds
	// metrics pass the full one.
	if vs := (Envelope{}).Violations(hot); vs != nil {
		t.Errorf("disabled envelope flagged %v", vs)
	}
	cool := WaveMetrics{PeakShare: 0.4, ConvergeNs: 5e6, PeakNHG: 2, Churn: 10}
	if vs := full.Violations(cool); vs != nil {
		t.Errorf("in-bounds metrics flagged %v", vs)
	}
}

func TestRetryPolicyBudgetAndBackoff(t *testing.T) {
	for _, tc := range []struct {
		max, want int
	}{{-1, 0}, {0, 2}, {1, 1}, {5, 5}} {
		if got := (RetryPolicy{MaxRetries: tc.max}).retries(); got != tc.want {
			t.Errorf("retries(MaxRetries=%d) = %d, want %d", tc.max, got, tc.want)
		}
	}
	var p RetryPolicy // defaults: 10ms base, 80ms cap
	for attempt, want := range map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 40 * time.Millisecond,
		4: 80 * time.Millisecond,
		9: 80 * time.Millisecond, // capped
	} {
		if got := p.backoff(attempt); got != want {
			t.Errorf("backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
	custom := RetryPolicy{BackoffBase: time.Millisecond, BackoffCap: 3 * time.Millisecond}
	if got := custom.backoff(3); got != 3*time.Millisecond {
		t.Errorf("custom backoff(3) = %v, want cap 3ms", got)
	}
}

func TestCheckpointCodec(t *testing.T) {
	cp := &Checkpoint{
		Version: checkpointVersion, Campaign: "c", Waves: 3, Wave: 1, Attempt: 2,
		Retries: 2, Rollbacks: 1, Started: true, LastGood: "abc", Log: "line\n",
	}
	data, err := cp.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Wave != 1 || got.Attempt != 2 || !got.Started || got.LastGood != "abc" {
		t.Errorf("round trip lost fields: %+v", got)
	}

	bad := []Checkpoint{
		{Version: 99, Waves: 1, LastGood: "x"},                         // wrong version
		{Version: checkpointVersion, Waves: 3, Wave: -1},               // negative wave
		{Version: checkpointVersion, Waves: 3, Wave: 3, LastGood: "x"}, // wave past end, not done
		{Version: checkpointVersion, Waves: 3, Wave: 1},                // no last-good, not done
	}
	for i := range bad {
		data, err := bad[i].Encode()
		if err != nil {
			t.Fatalf("encode bad[%d]: %v", i, err)
		}
		if _, err := DecodeCheckpoint(data); err == nil {
			t.Errorf("bad checkpoint %d accepted: %+v", i, bad[i])
		}
	}
	if _, err := DecodeCheckpoint([]byte("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	// A terminal checkpoint may sit past the last wave and needs no
	// last-good fingerprint.
	term := &Checkpoint{Version: checkpointVersion, Waves: 3, Wave: 3, Done: true, FinalFP: "x"}
	data, err = term.Encode()
	if err != nil {
		t.Fatalf("encode terminal: %v", err)
	}
	if _, err := DecodeCheckpoint(data); err != nil {
		t.Errorf("terminal checkpoint rejected: %v", err)
	}
}

func TestJournalFuncAndMemObjects(t *testing.T) {
	var gotLevel int
	var gotCP []byte
	j := JournalFunc(func(level int, cp []byte) error {
		gotLevel, gotCP = level, cp
		return nil
	})
	if err := j.SaveProgress(2, []byte("cp")); err != nil {
		t.Fatalf("SaveProgress: %v", err)
	}
	if gotLevel != 2 || string(gotCP) != "cp" {
		t.Errorf("journal saw level=%d cp=%q", gotLevel, gotCP)
	}

	objs := NewMemObjects()
	if _, ok, err := objs.Get("missing"); ok || err != nil {
		t.Errorf("Get(missing) = %v, %v", ok, err)
	}
	if err := objs.Put("k", []byte("first")); err != nil {
		t.Fatal(err)
	}
	// Put is idempotent per key: the first write wins (keys are
	// content-addressed fingerprints, so any second write is a replay).
	if err := objs.Put("k", []byte("second")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := objs.Get("k")
	if err != nil || !ok || string(data) != "first" {
		t.Errorf("Get(k) = %q, %v, %v", data, ok, err)
	}
}

func TestRunRejectsEmptyIntent(t *testing.T) {
	snap, _ := fig10Campaign(t, 1)
	if _, err := Run(context.Background(), snap, Campaign{}); err == nil ||
		!strings.Contains(err.Error(), "no intent") {
		t.Fatalf("empty campaign: %v", err)
	}
}

func TestResumeErrors(t *testing.T) {
	snap, c := fig10Campaign(t, 5)
	c.Objects = NewMemObjects()
	c.MaxWaves = 1
	res, err := Run(context.Background(), snap, c)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.State != StatePaused {
		t.Fatalf("state = %s, want paused", res.State)
	}

	requireErr := func(name string, cp []byte, c Campaign, frag string) {
		t.Helper()
		_, err := Resume(context.Background(), cp, c)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("%s: err = %v, want %q", name, err, frag)
		}
	}
	requireErr("garbage checkpoint", []byte("not json"), c, "decode checkpoint")

	noObjs := c
	noObjs.Objects = nil
	requireErr("nil object store", res.Checkpoint, noObjs, "needs an object store")

	empty := c
	empty.Objects = NewMemObjects()
	requireErr("missing snapshot", res.Checkpoint, empty, "missing from object store")

	renamed := c
	renamed.Name = "somebody-else"
	requireErr("campaign name mismatch", res.Checkpoint, renamed, "is for campaign")

	reshaped := c
	reshaped.Schedule = planner.Schedule{Steps: []planner.Step{{Devices: c.Intent.Devices()}}}
	requireErr("wave count mismatch", res.Checkpoint, reshaped, "waves")

	// The unmodified campaign still resumes to completion.
	c.MaxWaves = 0
	final, err := Resume(context.Background(), res.Checkpoint, c)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if final.State != StateCompleted {
		t.Fatalf("resumed terminal = %s\nlog:\n%s", final.State, final.Log)
	}
}
