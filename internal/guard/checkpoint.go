package guard

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Journal persists guard checkpoints, latest-wins — the interface
// internal/store's WAL-backed journal satisfies. The level passed to
// SaveProgress is the wave index, advisory only.
type Journal interface {
	SaveProgress(level int, checkpoint []byte) error
}

// JournalFunc adapts a function to the Journal interface.
type JournalFunc func(level int, checkpoint []byte) error

// SaveProgress implements Journal.
func (f JournalFunc) SaveProgress(level int, checkpoint []byte) error {
	return f(level, checkpoint)
}

// ObjectStore persists the guard's last-good snapshots, keyed by
// fingerprint — the interface internal/store's content-addressed
// SnapStore satisfies. Put must be idempotent for a given key.
type ObjectStore interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, bool, error)
}

// MemObjects is an in-memory ObjectStore for storeless daemons and
// tests: resumable within the process, gone with it.
type MemObjects struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemObjects builds an empty in-memory object store.
func NewMemObjects() *MemObjects { return &MemObjects{m: make(map[string][]byte)} }

// Put implements ObjectStore.
func (s *MemObjects) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		s.m[key] = append([]byte(nil), data...)
	}
	return nil
}

// Get implements ObjectStore.
func (s *MemObjects) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), data...), true, nil
}

// Checkpoint is the guard record journaled before every wave and after
// every rollback and terminal decision. It is self-contained: a resumed
// process needs only the checkpoint, the campaign definition, and the
// object store holding the referenced snapshots to drive the execution
// to the byte-identical terminal state.
type Checkpoint struct {
	Version  int    `json:"version"`
	Campaign string `json:"campaign"`
	// Waves is the campaign's total wave count (resume sanity check).
	Waves int `json:"waves"`
	// Wave and Attempt name the next attempt to execute.
	Wave    int `json:"wave"`
	Attempt int `json:"attempt"`
	// Retries and Rollbacks carry the counters across a resume.
	Retries   int `json:"retries"`
	Rollbacks int `json:"rollbacks"`
	// Started records that Wave's start line is already in Log (the
	// checkpoint was taken inside the wave, not at its boundary), so a
	// resumed run must not re-emit it.
	Started bool `json:"started,omitempty"`
	// LastGood is the fingerprint of the pre-wave snapshot in the object
	// store; the resumed run restores it as its working state.
	LastGood string `json:"last_good"`
	// Log is the decision log so far.
	Log string `json:"log"`

	// Terminal state: Done marks a finished campaign, Aborted its
	// outcome class, FinalFP the terminal snapshot, Report the codec'd
	// incident report when aborted.
	Done        bool     `json:"done,omitempty"`
	Aborted     bool     `json:"aborted,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
	FinalFP     string   `json:"final_fp,omitempty"`
	Report      []byte   `json:"report,omitempty"`
}

// checkpointVersion guards the JSON schema.
const checkpointVersion = 1

// Encode renders the checkpoint.
func (cp *Checkpoint) Encode() ([]byte, error) {
	out, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("guard: encode checkpoint: %w", err)
	}
	return out, nil
}

// DecodeCheckpoint parses and validates a journaled guard record.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("guard: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("guard: checkpoint version %d unsupported", cp.Version)
	}
	if cp.Waves < 0 || cp.Wave < 0 || cp.Attempt < 0 || (!cp.Done && cp.Wave >= cp.Waves && cp.Waves > 0) {
		return nil, fmt.Errorf("guard: checkpoint wave %d/%d attempt %d out of range", cp.Wave, cp.Waves, cp.Attempt)
	}
	if cp.LastGood == "" && !cp.Done {
		return nil, fmt.Errorf("guard: checkpoint has no last-good fingerprint")
	}
	return cp, nil
}
