// Package guard is Centralium's execution supervisor: it closes the loop
// between the chaos harness's detection machinery and the snapshot
// plane's restore machinery around a live migration campaign. Each wave
// of a rollout executes on a fork of the last-good snapshot under a
// telemetry probe; a wave whose measured transient leaves the campaign's
// safety envelope is paused, rolled back to last-good, and retried under
// capped exponential (virtual-clock) backoff with an optionally degraded
// shape — smaller batches, a MinNextHop override — until the retry
// budget runs out, at which point the offending devices are quarantined
// and the campaign aborts with a structured incident report. The guard
// journals a checkpoint to a WAL-backed journal before every wave, so a
// killed process resumes the execution to the byte-identical terminal
// state. Everything is deterministic: same snapshot, same campaign, same
// decision log, at any worker width.
package guard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"centralium/internal/controller"
	"centralium/internal/core"
	"centralium/internal/fabric"
	"centralium/internal/planner"
	"centralium/internal/snapshot"
	"centralium/internal/topo"
	"centralium/internal/traffic"
)

// State is a guarded campaign's state-machine node.
type State string

const (
	StateRunning     State = "running"
	StatePaused      State = "paused"
	StateRolledBack  State = "rolled-back"
	StateRetrying    State = "retrying"
	StateQuarantined State = "quarantined"
	StateCompleted   State = "completed"
	StateAborted     State = "aborted"
)

// Transition is one observed state-machine edge (the SSE progress feed).
type Transition struct {
	State   State  `json:"state"`
	Wave    int    `json:"wave"`
	Attempt int    `json:"attempt"`
	Detail  string `json:"detail,omitempty"`
}

// RetryPolicy bounds the remediation loop.
type RetryPolicy struct {
	// MaxRetries is the per-wave retry budget after the first attempt
	// (0 gets 2; negative means no retries).
	MaxRetries int `json:"max_retries"`
	// BackoffBase and BackoffCap shape the capped exponential backoff,
	// in virtual time (defaults 10ms base, 80ms cap).
	BackoffBase time.Duration `json:"backoff_base"`
	BackoffCap  time.Duration `json:"backoff_cap"`
	// NoSplit keeps the original wave shape on retries instead of
	// halving the batch per attempt.
	NoSplit bool `json:"no_split,omitempty"`
	// MinNextHop, when positive, overrides the wave's BgpNativeMinNextHop
	// percentage from the second retry on — the planner's searchable
	// protection threshold, applied as a degraded shape.
	MinNextHop int `json:"min_next_hop,omitempty"`
}

// retries resolves the policy's effective retry budget.
func (p RetryPolicy) retries() int {
	switch {
	case p.MaxRetries < 0:
		return 0
	case p.MaxRetries == 0:
		return 2
	default:
		return p.MaxRetries
	}
}

// backoff is the virtual-time delay before the given retry attempt
// (attempt >= 1).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	base, cap := p.BackoffBase, p.BackoffCap
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if cap <= 0 {
		cap = 80 * time.Millisecond
	}
	b := base
	for i := 1; i < attempt && b < cap; i++ {
		b *= 2
	}
	if b > cap {
		b = cap
	}
	return b
}

// Campaign is one guarded execution: the rollout, the envelope it must
// stay inside, the workload the envelope is judged under, and the
// persistence/observation hooks.
type Campaign struct {
	// Name labels the campaign in logs, checkpoints, and incidents.
	Name string

	// Intent is the rollout's per-device RPA assignment; OriginAltitude
	// anchors the §5.3.2 wave derivation when Schedule is nil.
	Intent         controller.Intent
	OriginAltitude int
	// Schedule, when non-nil, is the explicit wave plan (each step is
	// one wave); nil derives the §5.3.2 layer order.
	Schedule planner.Schedule

	// Envelope is the per-wave safety envelope; the zero envelope is
	// replaced by DefaultEnvelope.
	Envelope Envelope
	// Retry bounds the remediation loop.
	Retry RetryPolicy

	// Workload the probe measures the envelope against, mirroring
	// planner.Params.
	Demands      []traffic.Demand
	Watch        []topo.DeviceID
	FairShare    float64
	BlackholeEps float64
	SampleEvery  int
	// SettlePerDevice settles after every device rather than every wave.
	SettlePerDevice bool

	// Workers sizes the restore engine (0 gets the fleet default); it
	// never changes results, only wall-clock.
	Workers int

	// Instrument, when set, runs on the quiescent fork immediately
	// before each wave attempt executes — the chaos conformance suite's
	// fault-injection point. It must only arm virtual-clock callbacks
	// (fabric.Network.After), never process events itself.
	Instrument func(n *fabric.Network, wave, attempt int)

	// OnTransition observes every state-machine edge.
	OnTransition func(tr Transition)

	// Journal and Objects persist checkpoints and last-good snapshots;
	// either may be nil (Run still works, Resume needs Objects).
	Journal Journal
	Objects ObjectStore

	// MaxWaves, when positive, pauses the run after that many waves
	// complete in this call — the server's pacing/freeze hook. The
	// returned Result carries the checkpoint to resume from.
	MaxWaves int
}

// normalize applies defaults in place.
func (c *Campaign) normalize() error {
	if len(c.Intent) == 0 {
		return fmt.Errorf("guard: campaign has no intent")
	}
	if c.Name == "" {
		c.Name = "campaign"
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if c.BlackholeEps <= 0 {
		c.BlackholeEps = 0.001
	}
	if c.FairShare <= 0 && len(c.Watch) > 0 {
		c.FairShare = 1 / float64(len(c.Watch))
	}
	if c.Workers <= 0 {
		c.Workers = fabric.DefaultWorkers()
	}
	if c.Envelope == (Envelope{}) {
		c.Envelope = DefaultEnvelope()
	}
	// Canonicalize the intent's version tags. Config.Version is a
	// process-global generation counter with no behavioral role in the
	// emulated fabric, but it is embedded in every deployed config and
	// therefore in every state fingerprint. A guarded campaign must
	// replay byte-identically in a different process (WAL resume after a
	// daemon restart), so the guard re-tags deterministically: versions
	// 1..n in sorted device order.
	canon := make(controller.Intent, len(c.Intent))
	for i, d := range c.Intent.Devices() {
		cfg := c.Intent[d].Clone()
		cfg.Version = int64(i + 1)
		canon[d] = cfg
	}
	c.Intent = canon
	return nil
}

// FromParams builds a campaign from a planner scenario's parameters, so
// `planner.ScenarioSetup` output guards directly.
func FromParams(p planner.Params) Campaign {
	return Campaign{
		Intent:          p.Intent,
		OriginAltitude:  p.OriginAltitude,
		Demands:         p.Demands,
		Watch:           p.Watch,
		FairShare:       p.FairShare,
		BlackholeEps:    p.BlackholeEps,
		SampleEvery:     p.SampleEvery,
		SettlePerDevice: p.SettlePerDevice,
		Workers:         p.Workers,
	}
}

// Result is a guarded execution's outcome.
type Result struct {
	// State is StateCompleted, StateAborted, or StatePaused (pacing or
	// context expiry; resume with the Checkpoint).
	State State
	// Name echoes the campaign.
	Name string
	// Waves is the campaign's wave count; WavesDone how many completed.
	Waves     int
	WavesDone int
	// Retries and Rollbacks count remediation work across the campaign.
	Retries   int
	Rollbacks int
	// Quarantined lists the offending devices of an aborted campaign.
	Quarantined []string
	// Report is the incident report of an aborted campaign.
	Report *IncidentReport
	// Log is the deterministic decision log.
	Log string
	// Net is the terminal fabric state: the completed campaign's fleet,
	// or the rolled-back last-good fleet of an abort. Nil while paused.
	Net *fabric.Network
	// Snapshot is the terminal (or, paused, last-good) snapshot.
	Snapshot *snapshot.Snapshot
	// Checkpoint is the latest guard record; Resume accepts it.
	Checkpoint []byte
}

// Run executes the campaign from a quiescent base snapshot.
func Run(ctx context.Context, base *snapshot.Snapshot, c Campaign) (*Result, error) {
	r, err := newRun(base, c)
	if err != nil {
		return nil, err
	}
	return r.drive(ctx, base, 0, 0, false)
}

// Resume continues a campaign from a journaled checkpoint: the campaign
// definition must match the original and c.Objects must hold the
// checkpoint's snapshots. A terminal checkpoint rebuilds the terminal
// Result without re-executing anything; a mid-campaign checkpoint drives
// the execution onward to the byte-identical terminal state the
// uninterrupted run would have reached.
func Resume(ctx context.Context, cpData []byte, c Campaign) (*Result, error) {
	cp, err := DecodeCheckpoint(cpData)
	if err != nil {
		return nil, err
	}
	if c.Objects == nil {
		return nil, fmt.Errorf("guard: resume needs an object store")
	}
	fp := cp.LastGood
	if cp.Done {
		fp = cp.FinalFP
	}
	snap, err := fetchSnapshot(c.Objects, fp)
	if err != nil {
		return nil, err
	}
	r, err := newRun(snap, c)
	if err != nil {
		return nil, err
	}
	if cp.Waves != len(r.waves) {
		return nil, fmt.Errorf("guard: checkpoint has %d waves, campaign derives %d", cp.Waves, len(r.waves))
	}
	if cp.Campaign != r.c.Name {
		return nil, fmt.Errorf("guard: checkpoint is for campaign %q, not %q", cp.Campaign, r.c.Name)
	}
	r.log.WriteString(cp.Log)
	r.retries, r.rollbacks = cp.Retries, cp.Rollbacks
	r.lastCP = append([]byte(nil), cpData...)
	if cp.Done {
		net, rerr := r.restore(snap)
		if rerr != nil {
			return nil, rerr
		}
		res := &Result{
			Name: r.c.Name, Waves: len(r.waves),
			Retries: r.retries, Rollbacks: r.rollbacks,
			Quarantined: cp.Quarantined,
			Log:         cp.Log, Net: net, Snapshot: snap, Checkpoint: r.lastCP,
		}
		if cp.Aborted {
			res.State = StateAborted
			res.WavesDone = cp.Wave
			if res.Report, err = DecodeIncidentReport(cp.Report); err != nil {
				return nil, err
			}
		} else {
			res.State = StateCompleted
			res.WavesDone = len(r.waves)
		}
		return res, nil
	}
	return r.drive(ctx, snap, cp.Wave, cp.Attempt, cp.Started)
}

// fetchSnapshot loads and decodes a fingerprinted snapshot.
func fetchSnapshot(objs ObjectStore, fp string) (*snapshot.Snapshot, error) {
	data, ok, err := objs.Get(fp)
	if err != nil {
		return nil, fmt.Errorf("guard: object store: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("guard: snapshot %s missing from object store", short(fp))
	}
	snap, err := snapshot.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("guard: snapshot %s: %w", short(fp), err)
	}
	return snap, nil
}

// run is one guarded execution in flight.
type run struct {
	c     *Campaign
	tp    *topo.Topology
	waves []planner.Step

	log       strings.Builder
	retries   int
	rollbacks int
	lastCP    []byte
}

// newRun normalizes the campaign and derives its waves. The base
// snapshot supplies the topology; waves come from the explicit schedule
// or the §5.3.2 layer order.
func newRun(base *snapshot.Snapshot, c Campaign) (*run, error) {
	if err := c.normalize(); err != nil {
		return nil, err
	}
	n, err := base.RestoreWith(fabric.RestoreOptions{Workers: c.Workers})
	if err != nil {
		return nil, fmt.Errorf("guard: restore base: %w", err)
	}
	r := &run{c: &c, tp: n.Topo}
	if len(c.Schedule.Steps) > 0 {
		r.waves = c.Schedule.Clone().Steps
	} else {
		ctl := &controller.Controller{Topo: r.tp}
		r.waves = planner.FromWaves(ctl.Waves(controller.Rollout{
			Intent: c.Intent, OriginAltitude: c.OriginAltitude,
		})).Steps
	}
	if len(r.waves) == 0 {
		return nil, fmt.Errorf("guard: campaign has no waves")
	}
	return r, nil
}

func (r *run) restore(snap *snapshot.Snapshot) (*fabric.Network, error) {
	n, err := snap.RestoreWith(fabric.RestoreOptions{Workers: r.c.Workers, Topo: r.tp.Clone()})
	if err != nil {
		return nil, fmt.Errorf("guard: restore: %w", err)
	}
	return n, nil
}

func (r *run) logf(format string, args ...any) {
	fmt.Fprintf(&r.log, format+"\n", args...)
}

func (r *run) transition(st State, wave, attempt int, detail string) {
	if r.c.OnTransition != nil {
		r.c.OnTransition(Transition{State: st, Wave: wave, Attempt: attempt, Detail: detail})
	}
}

// persist journals the guard record (and puts the snapshot in the object
// store) for the given resume point; started marks a checkpoint taken
// after the wave's start line was logged; term carries the terminal
// fields.
func (r *run) persist(snap *snapshot.Snapshot, fp string, wave, attempt int, started bool, term *Checkpoint) error {
	if r.c.Objects != nil {
		enc, err := snap.Encode()
		if err != nil {
			return fmt.Errorf("guard: encode snapshot: %w", err)
		}
		if err := r.c.Objects.Put(fp, enc); err != nil {
			return fmt.Errorf("guard: object store: %w", err)
		}
	}
	cp := &Checkpoint{
		Version: checkpointVersion, Campaign: r.c.Name, Waves: len(r.waves),
		Wave: wave, Attempt: attempt, Started: started,
		Retries: r.retries, Rollbacks: r.rollbacks,
		LastGood: fp, Log: r.log.String(),
	}
	if term != nil {
		cp.Done, cp.Aborted = true, term.Aborted
		cp.Quarantined, cp.FinalFP, cp.Report = term.Quarantined, term.FinalFP, term.Report
	}
	data, err := cp.Encode()
	if err != nil {
		return err
	}
	r.lastCP = data
	if r.c.Journal != nil {
		if err := r.c.Journal.SaveProgress(wave, data); err != nil {
			return fmt.Errorf("guard: journal: %w", err)
		}
	}
	return nil
}

// drive runs the supervisor loop from (startWave, startAttempt) with
// lastGood as the authoritative pre-wave state; startedAlready means the
// start wave's log line was emitted before the checkpoint being resumed.
func (r *run) drive(ctx context.Context, lastGood *snapshot.Snapshot, startWave, startAttempt int, startedAlready bool) (*Result, error) {
	maxRetries := r.c.Retry.retries()
	if r.log.Len() == 0 {
		r.logf("guard %s: %d wave(s), envelope [%s], max retries %d",
			r.c.Name, len(r.waves), r.c.Envelope, maxRetries)
	}
	wavesThisCall := 0
	var net *fabric.Network
	for w := startWave; w < len(r.waves); w++ {
		step := r.waves[w]
		fp, err := lastGood.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("guard: fingerprint: %w", err)
		}
		attempt0, startedHere := 0, false
		if w == startWave {
			attempt0, startedHere = startAttempt, startedAlready
		}
		if r.c.MaxWaves > 0 && wavesThisCall >= r.c.MaxWaves {
			if err := r.persist(lastGood, fp, w, attempt0, startedHere, nil); err != nil {
				return nil, err
			}
			r.transition(StatePaused, w, attempt0, "pacing")
			return r.paused(lastGood, w), nil
		}
		if err := r.persist(lastGood, fp, w, attempt0, startedHere, nil); err != nil {
			return nil, err
		}
		if attempt0 == 0 && !startedHere {
			r.logf("wave %d [%s]: start (last-good %s)", w, devList(step.Devices), short(fp))
		}
		for attempt := attempt0; ; attempt++ {
			steps := degradedShape(step, attempt, r.c.Retry)
			shape := planner.Schedule{Steps: steps}.String()
			work, rerr := r.restore(lastGood)
			if rerr != nil {
				return nil, rerr
			}
			if attempt > 0 {
				b := r.c.Retry.backoff(attempt)
				r.transition(StateRetrying, w, attempt, shape)
				r.logf("wave %d attempt %d: retry after %s backoff, shape %q", w, attempt, b, shape)
				work.RunFor(b)
			} else {
				r.transition(StateRunning, w, attempt, shape)
			}
			if r.c.Instrument != nil {
				r.c.Instrument(work, w, attempt)
			}
			m, xerr := executeWave(ctx, work, r.c, steps)
			if xerr != nil && isCtxErr(xerr) {
				// Freeze at the wave boundary: the attempt's fork is
				// abandoned, the checkpoint re-targets this attempt, and
				// the resumed run replays it identically.
				if err := r.persist(lastGood, fp, w, attempt, true, nil); err != nil {
					return nil, err
				}
				r.transition(StatePaused, w, attempt, "context")
				return r.paused(lastGood, w), nil
			}
			var viols []Violation
			if xerr != nil {
				viols = []Violation{{Check: "execute-error", Detail: xerr.Error()}}
			} else {
				r.logf("wave %d attempt %d: %s", w, attempt, m)
				viols = r.c.Envelope.Violations(m)
			}
			if len(viols) == 0 {
				r.logf("wave %d attempt %d: ok", w, attempt)
				net = work
				break
			}
			for _, v := range viols {
				r.logf("wave %d attempt %d: VIOLATION %s", w, attempt, v)
			}
			r.rollbacks++
			r.transition(StateRolledBack, w, attempt, short(fp))
			r.logf("wave %d: pause; roll back to last-good %s", w, short(fp))
			if attempt >= maxRetries {
				return r.abort(lastGood, fp, w, attempt, step, viols, m)
			}
			r.retries++
			if err := r.persist(lastGood, fp, w, attempt+1, true, nil); err != nil {
				return nil, err
			}
		}
		// Wave complete: the surviving fork becomes the campaign state.
		if err := quiesce(net); err != nil {
			return nil, err
		}
		snap, cerr := snapshot.Capture(net)
		if cerr != nil {
			return nil, fmt.Errorf("guard: capture after wave %d: %w", w, cerr)
		}
		lastGood = snap
		wavesThisCall++
	}
	fp, err := lastGood.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("guard: fingerprint: %w", err)
	}
	r.logf("guard %s: campaign complete: %d wave(s), %d retried attempt(s), %d rollback(s)",
		r.c.Name, len(r.waves), r.retries, r.rollbacks)
	term := &Checkpoint{FinalFP: fp}
	if err := r.persist(lastGood, fp, len(r.waves), 0, false, term); err != nil {
		return nil, err
	}
	r.transition(StateCompleted, len(r.waves), 0, short(fp))
	return &Result{
		State: StateCompleted, Name: r.c.Name,
		Waves: len(r.waves), WavesDone: len(r.waves),
		Retries: r.retries, Rollbacks: r.rollbacks,
		Log: r.log.String(), Net: net, Snapshot: lastGood, Checkpoint: r.lastCP,
	}, nil
}

// abort quarantines the offenders, restores the last-good fabric as the
// terminal state, and seals the incident report.
func (r *run) abort(lastGood *snapshot.Snapshot, fp string, wave, attempt int, step planner.Step, viols []Violation, m WaveMetrics) (*Result, error) {
	q := offenders(viols, step.Devices)
	r.transition(StateQuarantined, wave, attempt, strings.Join(q, ","))
	r.logf("wave %d: retry budget exhausted; quarantine [%s]; abort", wave, strings.Join(q, ","))
	term, err := r.restore(lastGood)
	if err != nil {
		return nil, err
	}
	report := &IncidentReport{
		Campaign: r.c.Name, Wave: wave, Attempt: attempt,
		TimeNs:   lastGood.Now(),
		LastGood: fp, Quarantined: q, Violations: viols,
		Log: r.log.String(),
	}
	tcp := &Checkpoint{Aborted: true, Quarantined: q, FinalFP: fp, Report: EncodeIncidentReport(report)}
	if err := r.persist(lastGood, fp, wave, attempt, true, tcp); err != nil {
		return nil, err
	}
	r.transition(StateAborted, wave, attempt, short(fp))
	return &Result{
		State: StateAborted, Name: r.c.Name,
		Waves: len(r.waves), WavesDone: wave,
		Retries: r.retries, Rollbacks: r.rollbacks,
		Quarantined: q, Report: report,
		Log: r.log.String(), Net: term, Snapshot: lastGood, Checkpoint: r.lastCP,
	}, nil
}

func (r *run) paused(lastGood *snapshot.Snapshot, wave int) *Result {
	return &Result{
		State: StatePaused, Name: r.c.Name,
		Waves: len(r.waves), WavesDone: wave,
		Retries: r.retries, Rollbacks: r.rollbacks,
		Log: r.log.String(), Snapshot: lastGood, Checkpoint: r.lastCP,
	}
}

// quiesce drains any events a wave left behind so the post-wave capture
// sits at a consistent cut; a converged wave makes this a no-op.
func quiesce(n *fabric.Network) error {
	n.Converge()
	return nil
}

// executeWave pushes one wave attempt (possibly several degraded-shape
// steps) through the real rollout path under the guard probe.
func executeWave(ctx context.Context, n *fabric.Network, c *Campaign, steps []planner.Step) (WaveMetrics, error) {
	pb := newProbe(n, c)
	events := int64(0)
	ctl := &controller.Controller{
		Topo:   n.Topo,
		Deploy: func(d topo.DeviceID, cfg *core.Config) error { return n.DeployRPA(d, cfg) },
		Settle: func() { events += n.Converge() },
	}
	for _, st := range steps {
		err := ctl.ExecuteCtx(ctx, controller.OrchestratedChange{
			Name: "guarded wave",
			Rollout: controller.Rollout{
				Intent:          st.Intent(c.Intent),
				OriginAltitude:  c.OriginAltitude,
				Schedule:        [][]topo.DeviceID{st.Devices},
				SettlePerDevice: c.SettlePerDevice,
			},
		})
		if err != nil {
			return pb.finish(events), err
		}
	}
	return pb.finish(events), nil
}

// degradedShape maps (wave, attempt, policy) to the attempt's step list:
// attempt 0 is the wave as planned; later attempts halve the batch per
// retry (unless NoSplit) and apply the policy's MinNextHop override from
// the second retry on.
func degradedShape(step planner.Step, attempt int, pol RetryPolicy) []planner.Step {
	if attempt == 0 {
		return []planner.Step{step}
	}
	mnh := step.MinNextHop
	if attempt >= 2 && pol.MinNextHop > 0 {
		mnh = pol.MinNextHop
	}
	batch := len(step.Devices)
	if !pol.NoSplit {
		batch = (len(step.Devices) + (1 << attempt) - 1) / (1 << attempt)
		if batch < 1 {
			batch = 1
		}
	}
	var out []planner.Step
	for i := 0; i < len(step.Devices); i += batch {
		j := i + batch
		if j > len(step.Devices) {
			j = len(step.Devices)
		}
		out = append(out, planner.Step{Devices: step.Devices[i:j], Bare: step.Bare, MinNextHop: mnh})
	}
	return out
}

// offenders derives the quarantine set: the union of devices the
// violations attribute, sorted; an unattributable hazard quarantines the
// whole wave.
func offenders(viols []Violation, wave []topo.DeviceID) []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range viols {
		for _, d := range v.Devices {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	if len(out) == 0 {
		for _, d := range wave {
			out = append(out, string(d))
		}
	}
	sort.Strings(out)
	return out
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// short abbreviates a fingerprint for the decision log.
func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

func devList(devs []topo.DeviceID) string {
	parts := make([]string, len(devs))
	for i, d := range devs {
		parts[i] = string(d)
	}
	return strings.Join(parts, ",")
}
