package guard

import (
	"encoding/binary"
	"fmt"
)

// IncidentReport is the structured terminal record of an aborted
// campaign: which wave could not be made safe, the evidence, who got
// quarantined, and the fingerprint of the last-good state the fabric was
// rolled back to. It travels in a versioned binary codec so incident
// records survive outside the process that produced them (WAL payloads,
// API responses, postmortem archives).
type IncidentReport struct {
	// Campaign is the campaign name.
	Campaign string `json:"campaign"`
	// Wave and Attempt locate the abort decision.
	Wave    int `json:"wave"`
	Attempt int `json:"attempt"`
	// TimeNs is the virtual time of the abort decision.
	TimeNs int64 `json:"time_ns"`
	// LastGood is the fingerprint of the snapshot the fabric was rolled
	// back to.
	LastGood string `json:"last_good"`
	// Quarantined lists the offending devices, sorted.
	Quarantined []string `json:"quarantined,omitempty"`
	// Violations is the final attempt's envelope evidence.
	Violations []Violation `json:"violations,omitempty"`
	// Log is the full decision log up to and including the abort.
	Log string `json:"log"`
}

// Codec framing: 4-byte magic, 1-byte version, then varint-framed fields.
const (
	reportMagic   = "CGI1"
	reportVersion = 1

	// maxReportString bounds any single string field; maxReportList
	// bounds list lengths. Both exist so a corrupt length prefix cannot
	// drive allocation.
	maxReportString = 1 << 20
	maxReportList   = 1 << 16
)

// EncodeIncidentReport renders the report in the versioned binary form.
// Encoding is deterministic and canonical: equal reports produce equal
// bytes, and decode(encode(r)) round-trips exactly.
func EncodeIncidentReport(r *IncidentReport) []byte {
	b := make([]byte, 0, 256+len(r.Log))
	b = append(b, reportMagic...)
	b = append(b, reportVersion)
	b = appendString(b, r.Campaign)
	b = binary.AppendUvarint(b, uint64(r.Wave))
	b = binary.AppendUvarint(b, uint64(r.Attempt))
	b = binary.AppendVarint(b, r.TimeNs)
	b = appendString(b, r.LastGood)
	b = binary.AppendUvarint(b, uint64(len(r.Quarantined)))
	for _, q := range r.Quarantined {
		b = appendString(b, q)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Violations)))
	for _, v := range r.Violations {
		b = appendString(b, v.Check)
		b = binary.AppendUvarint(b, uint64(len(v.Devices)))
		for _, d := range v.Devices {
			b = appendString(b, d)
		}
		b = appendString(b, v.Detail)
	}
	b = appendString(b, r.Log)
	return b
}

// DecodeIncidentReport parses the binary form. It never panics on
// arbitrary input, consumes the whole buffer or fails, and every report
// it returns re-encodes to the exact bytes it came from.
func DecodeIncidentReport(data []byte) (*IncidentReport, error) {
	d := &reportDecoder{buf: data}
	if string(d.take(len(reportMagic))) != reportMagic {
		return nil, fmt.Errorf("guard: incident report: bad magic")
	}
	if v := d.take(1); len(v) != 1 || v[0] != reportVersion {
		return nil, fmt.Errorf("guard: incident report: unsupported version")
	}
	r := &IncidentReport{}
	r.Campaign = d.str()
	r.Wave = d.count(maxReportList)
	r.Attempt = d.count(maxReportList)
	r.TimeNs = d.varint()
	r.LastGood = d.str()
	if n := d.count(maxReportList); n > 0 {
		r.Quarantined = make([]string, n)
		for i := range r.Quarantined {
			r.Quarantined[i] = d.str()
		}
	}
	if n := d.count(maxReportList); n > 0 {
		r.Violations = make([]Violation, n)
		for i := range r.Violations {
			r.Violations[i].Check = d.str()
			if dn := d.count(maxReportList); dn > 0 {
				r.Violations[i].Devices = make([]string, dn)
				for j := range r.Violations[i].Devices {
					r.Violations[i].Devices[j] = d.str()
				}
			}
			r.Violations[i].Detail = d.str()
		}
	}
	r.Log = d.str()
	if d.err != nil {
		return nil, fmt.Errorf("guard: incident report: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("guard: incident report: %d trailing byte(s)", len(d.buf))
	}
	return r, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// reportDecoder is a cursor with sticky errors: after the first failure
// every read returns zero values, so decode logic stays linear.
type reportDecoder struct {
	buf []byte
	err error
}

func (d *reportDecoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s", msg)
	}
}

func (d *reportDecoder) take(n int) []byte {
	if d.err != nil || n < 0 || n > len(d.buf) {
		d.fail("truncated")
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *reportDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	switch {
	case n <= 0:
		d.fail("bad uvarint")
		return 0
	case n > 1 && d.buf[n-1] == 0:
		// A zero top byte means a padded, non-minimal encoding. The codec
		// is canonical — every accepted input must re-encode to itself —
		// so only minimal varints decode.
		d.fail("non-minimal uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *reportDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	switch {
	case n <= 0:
		d.fail("bad varint")
		return 0
	case n > 1 && d.buf[n-1] == 0:
		d.fail("non-minimal varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a list/field count with an upper bound.
func (d *reportDecoder) count(limit int) int {
	v := d.uvarint()
	if d.err == nil && v > uint64(limit) {
		d.fail("count out of range")
		return 0
	}
	return int(v)
}

func (d *reportDecoder) str() string {
	n := d.uvarint()
	if d.err == nil && (n > maxReportString || n > uint64(len(d.buf))) {
		d.fail("string length out of range")
		return ""
	}
	return string(d.take(int(n)))
}
