package guard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Envelope is a campaign's safety envelope: per-wave bounds on the
// transient metrics the guard probe measures. Every field follows one
// convention so zero values stay inert:
//
//	0   the check is disabled
//	> 0 the bound itself (a wave violates when its metric exceeds it)
//	< 0 a bound of zero (the metric must not appear at all)
//
// The negative form exists because "at most zero" is a real envelope —
// "no session may flap during this campaign" — and a plain zero cannot
// express it without stealing the disabled meaning.
type Envelope struct {
	// MaxBlackholeNs bounds the integrated virtual time the workload's
	// black-holed fraction exceeded epsilon during the wave.
	MaxBlackholeNs int64 `json:"max_blackhole_ns,omitempty"`
	// MaxPeakShare bounds the worst transient traffic share on any
	// watched device (the funneling metric).
	MaxPeakShare float64 `json:"max_peak_share,omitempty"`
	// MaxConvergeNs bounds the virtual time the wave took to settle.
	MaxConvergeNs int64 `json:"max_converge_ns,omitempty"`
	// MaxPeakNHG bounds next-hop-group occupancy seen in FIB writes.
	MaxPeakNHG int `json:"max_peak_nhg,omitempty"`
	// MaxChurn bounds routing events (Adj-RIB-In + best path) on the tap.
	MaxChurn int64 `json:"max_churn,omitempty"`
	// MaxSessionDowns bounds BGP session-down events. A clean RPA wave
	// never drops a session, so -1 here (none allowed) cleanly separates
	// config-push transients from fault-induced turbulence.
	MaxSessionDowns int64 `json:"max_session_downs,omitempty"`
	// MaxAlerts bounds pathology-detector alerts fired during the wave.
	MaxAlerts int `json:"max_alerts,omitempty"`
}

// DefaultEnvelope is the floor applied when a guarded execution names no
// envelope: no session may drop, and the black-hole window stays under
// 5ms of virtual time.
func DefaultEnvelope() Envelope {
	return Envelope{MaxSessionDowns: -1, MaxBlackholeNs: 5e6}
}

// boundI resolves an int-family field to (limit, enabled).
func boundI(v int64) (int64, bool) {
	switch {
	case v == 0:
		return 0, false
	case v < 0:
		return 0, true
	default:
		return v, true
	}
}

// boundF resolves a float field to (limit, enabled).
func boundF(v float64) (float64, bool) {
	switch {
	case v == 0:
		return 0, false
	case v < 0:
		return 0, true
	default:
		return v, true
	}
}

// String renders the enabled checks in canonical order — the form the
// decision log records, so two campaigns with one envelope log one header.
func (e Envelope) String() string {
	var parts []string
	if lim, on := boundI(e.MaxBlackholeNs); on {
		parts = append(parts, fmt.Sprintf("blackhole<=%.2fms", float64(lim)/1e6))
	}
	if lim, on := boundF(e.MaxPeakShare); on {
		parts = append(parts, fmt.Sprintf("share<=%.3f", lim))
	}
	if lim, on := boundI(e.MaxConvergeNs); on {
		parts = append(parts, fmt.Sprintf("converge<=%.2fms", float64(lim)/1e6))
	}
	if lim, on := boundI(int64(e.MaxPeakNHG)); on {
		parts = append(parts, fmt.Sprintf("nhg<=%d", lim))
	}
	if lim, on := boundI(e.MaxChurn); on {
		parts = append(parts, fmt.Sprintf("churn<=%d", lim))
	}
	if lim, on := boundI(e.MaxSessionDowns); on {
		parts = append(parts, fmt.Sprintf("session-downs<=%d", lim))
	}
	if lim, on := boundI(int64(e.MaxAlerts)); on {
		parts = append(parts, fmt.Sprintf("alerts<=%d", lim))
	}
	if len(parts) == 0 {
		return "unbounded"
	}
	return strings.Join(parts, " ")
}

// Spec renders the envelope in ParseEnvelope syntax, keys in canonical
// order — the round-trippable form, unlike String's log form. An
// envelope with no enabled checks renders as "".
func (e Envelope) Spec() string {
	var parts []string
	add := func(key string, v float64, on bool) {
		if !on {
			return
		}
		parts = append(parts, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
	}
	lim, on := boundI(e.MaxBlackholeNs)
	add("blackhole-ms", float64(lim)/1e6, on)
	limF, onF := boundF(e.MaxPeakShare)
	add("share", limF, onF)
	lim, on = boundI(e.MaxConvergeNs)
	add("converge-ms", float64(lim)/1e6, on)
	lim, on = boundI(int64(e.MaxPeakNHG))
	add("nhg", float64(lim), on)
	lim, on = boundI(e.MaxChurn)
	add("churn", float64(lim), on)
	lim, on = boundI(e.MaxSessionDowns)
	add("session-downs", float64(lim), on)
	lim, on = boundI(int64(e.MaxAlerts))
	add("alerts", float64(lim), on)
	return strings.Join(parts, ",")
}

// Violation is one envelope check a wave failed.
type Violation struct {
	// Check names the failed envelope check ("blackhole", "share",
	// "converge", "nhg", "churn", "session-downs", "alerts") or
	// "execute-error" when the rollout itself failed.
	Check string `json:"check"`
	// Devices attributes the violation when the metric names offenders;
	// empty when the hazard is fleet-wide (e.g. a black-hole window).
	Devices []string `json:"devices,omitempty"`
	// Detail is the deterministic human-readable evidence.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	if len(v.Devices) == 0 {
		return v.Check + ": " + v.Detail
	}
	return v.Check + " [" + strings.Join(v.Devices, ",") + "]: " + v.Detail
}

// Violations evaluates one wave's measured transient against the
// envelope. Checks run in canonical order, so the violation list — and
// everything downstream of it: decision log, quarantine set, incident
// report — is deterministic.
func (e Envelope) Violations(m WaveMetrics) []Violation {
	var out []Violation
	if lim, on := boundI(e.MaxBlackholeNs); on && m.BlackholeNs > lim {
		out = append(out, Violation{Check: "blackhole",
			Detail: fmt.Sprintf("%.2fms black-hole window > limit %.2fms", float64(m.BlackholeNs)/1e6, float64(lim)/1e6)})
	}
	if lim, on := boundF(e.MaxPeakShare); on && m.PeakShare > lim {
		out = append(out, Violation{Check: "share", Devices: one(m.ShareDevice),
			Detail: fmt.Sprintf("peak share %.3f > limit %.3f", m.PeakShare, lim)})
	}
	if lim, on := boundI(e.MaxConvergeNs); on && m.ConvergeNs > lim {
		out = append(out, Violation{Check: "converge",
			Detail: fmt.Sprintf("settled in %.2fms > limit %.2fms", float64(m.ConvergeNs)/1e6, float64(lim)/1e6)})
	}
	if lim, on := boundI(int64(e.MaxPeakNHG)); on && int64(m.PeakNHG) > lim {
		out = append(out, Violation{Check: "nhg", Devices: one(m.NHGDevice),
			Detail: fmt.Sprintf("peak NHG occupancy %d > limit %d", m.PeakNHG, lim)})
	}
	if lim, on := boundI(e.MaxChurn); on && m.Churn > lim {
		out = append(out, Violation{Check: "churn",
			Detail: fmt.Sprintf("%d routing events > limit %d", m.Churn, lim)})
	}
	if lim, on := boundI(e.MaxSessionDowns); on && m.SessionDowns > lim {
		out = append(out, Violation{Check: "session-downs", Devices: sortedCopy(m.DownDevices),
			Detail: fmt.Sprintf("%d session-down event(s) > limit %d", m.SessionDowns, lim)})
	}
	if lim, on := boundI(int64(e.MaxAlerts)); on && int64(m.Alerts) > lim {
		out = append(out, Violation{Check: "alerts", Devices: sortedCopy(m.AlertDevices),
			Detail: fmt.Sprintf("%d detector alert(s) [%s] > limit %d", m.Alerts, strings.Join(m.AlertTags, " "), lim)})
	}
	return out
}

func one(dev string) []string {
	if dev == "" {
		return nil
	}
	return []string{dev}
}

func sortedCopy(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// ParseEnvelope parses the CLI/API envelope syntax: comma-separated
// key=value pairs over the keys blackhole-ms, share, converge-ms, nhg,
// churn, session-downs, alerts. A value of 0 means "none allowed" (the
// negative internal form); omitted keys stay disabled. The empty string
// parses to the zero (fully disabled) envelope.
func ParseEnvelope(text string) (Envelope, error) {
	var e Envelope
	if strings.TrimSpace(text) == "" {
		return e, nil
	}
	for _, pair := range strings.Split(text, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return Envelope{}, fmt.Errorf("guard: envelope: %q is not key=value", pair)
		}
		key = strings.TrimSpace(key)
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || f < 0 {
			return Envelope{}, fmt.Errorf("guard: envelope: bad value %q for %s", val, key)
		}
		switch key {
		case "blackhole-ms":
			e.MaxBlackholeNs = nsBound(f * 1e6)
		case "share":
			if f == 0 {
				e.MaxPeakShare = -1
			} else {
				e.MaxPeakShare = f
			}
		case "converge-ms":
			e.MaxConvergeNs = nsBound(f * 1e6)
		case "nhg":
			e.MaxPeakNHG = intBound(f)
		case "churn":
			e.MaxChurn = int64(intBound(f))
		case "session-downs":
			e.MaxSessionDowns = int64(intBound(f))
		case "alerts":
			e.MaxAlerts = intBound(f)
		default:
			return Envelope{}, fmt.Errorf("guard: envelope: unknown key %q", key)
		}
	}
	return e, nil
}

func nsBound(ns float64) int64 {
	if ns == 0 {
		return -1
	}
	return int64(ns)
}

func intBound(f float64) int {
	if f == 0 {
		return -1
	}
	return int(f)
}
