package guard

import (
	"context"
	"testing"
	"time"

	"centralium/internal/fabric"
	"centralium/internal/snapshot"
	"centralium/internal/store"
	"centralium/internal/topo"
)

// pacedToTerminal drives a campaign one wave per call through
// Run/Resume, simulating a process that dies and resumes at every wave
// boundary, and returns the terminal result.
func pacedToTerminal(t *testing.T, snap *snapshot.Snapshot, c Campaign) *Result {
	t.Helper()
	c.MaxWaves = 1
	res, err := Run(context.Background(), snap, c)
	if err != nil {
		t.Fatalf("paced run: %v", err)
	}
	for hops := 0; res.State == StatePaused; hops++ {
		if hops > 64 {
			t.Fatalf("paced run did not terminate")
		}
		if res, err = Resume(context.Background(), res.Checkpoint, c); err != nil {
			t.Fatalf("paced resume: %v", err)
		}
	}
	return res
}

// requireSameTerminal asserts two results reached the byte-identical
// terminal state: same state, same decision log, same terminal
// fingerprint.
func requireSameTerminal(t *testing.T, want, got *Result) {
	t.Helper()
	if want.State != got.State {
		t.Fatalf("terminal state %s, want %s\nlog:\n%s", got.State, want.State, got.Log)
	}
	if want.Log != got.Log {
		t.Fatalf("decision logs diverge\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want.Log, got.Log)
	}
	wfp, err := want.Snapshot.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	gfp, err := got.Snapshot.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	if wfp != gfp {
		t.Fatalf("terminal fingerprints diverge: %s vs %s", short(wfp), short(gfp))
	}
	if want.Retries != got.Retries || want.Rollbacks != got.Rollbacks {
		t.Fatalf("counters diverge: retries %d/%d rollbacks %d/%d",
			want.Retries, got.Retries, want.Rollbacks, got.Rollbacks)
	}
}

// stormInstrument re-arms a spine restart on every attempt of wave 1; a
// pure function of (wave, attempt), so resumed runs replay it.
func stormInstrument(n *fabric.Network, wave, attempt int) {
	if wave == 1 {
		n.After(time.Millisecond, func() {
			n.RestartDevice(topo.SSWID(0, 0), 2*time.Millisecond, false)
		})
	}
}

func TestPacedResumeMatchesUninterrupted(t *testing.T) {
	for _, tc := range []struct {
		name       string
		instrument func(n *fabric.Network, wave, attempt int)
		want       State
	}{
		{name: "clean", want: StateCompleted},
		{name: "storm", instrument: stormInstrument, want: StateAborted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snap, c := fig10Campaign(t, 11)
			c.Instrument = tc.instrument
			c.Objects = NewMemObjects()
			ref, err := Run(context.Background(), snap, c)
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			if ref.State != tc.want {
				t.Fatalf("uninterrupted terminal = %s, want %s\nlog:\n%s", ref.State, tc.want, ref.Log)
			}
			res := pacedToTerminal(t, snap, c)
			requireSameTerminal(t, ref, res)
		})
	}
}

// TestResumeAcrossStoreReopen is the crash-shaped resume: the guard
// journals through a real WAL-backed store, the process "dies" (store
// closed mid-campaign), and a fresh store handle resumes from the
// journaled checkpoint to the byte-identical terminal state.
func TestResumeAcrossStoreReopen(t *testing.T) {
	dir := t.TempDir()
	snap, c := fig10Campaign(t, 13)
	c.Instrument = stormInstrument

	// Reference: uninterrupted run, no persistence.
	ref, err := Run(context.Background(), snap, Campaign(c))
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	const guardRecType = 5
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	c.Journal = st.Journal(guardRecType, "exec/fig10")
	c.Objects = st.Objects
	c.MaxWaves = 1
	res, err := Run(context.Background(), snap, c)
	if err != nil {
		t.Fatalf("first leg: %v", err)
	}
	if res.State != StatePaused {
		t.Fatalf("first leg terminal = %s, want paused", res.State)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	// The restarted process: reopen the directory, recover the latest
	// guard record from the WAL, and drive to the end.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	j := st2.Journal(guardRecType, "exec/fig10")
	cp, ok, err := j.Latest()
	if err != nil || !ok {
		t.Fatalf("latest guard record: ok=%v err=%v", ok, err)
	}
	c.Journal = j
	c.Objects = st2.Objects
	c.MaxWaves = 0
	res, err = Resume(context.Background(), cp, c)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	requireSameTerminal(t, ref, res)

	// The terminal record is durable too: a third process resuming from
	// it rebuilds the terminal result without executing anything.
	cp, ok, err = j.Latest()
	if err != nil || !ok {
		t.Fatalf("terminal guard record: ok=%v err=%v", ok, err)
	}
	res2, err := Resume(context.Background(), cp, c)
	if err != nil {
		t.Fatalf("terminal resume: %v", err)
	}
	requireSameTerminal(t, ref, res2)
	if res2.Report == nil || len(res2.Quarantined) == 0 {
		t.Fatalf("terminal resume lost the incident report")
	}
}

// TestContextCancelPausesResumable: a context cancelled mid-campaign
// freezes the run at the wave boundary; resuming with a fresh context
// reaches the uninterrupted terminal state.
func TestContextCancelPausesResumable(t *testing.T) {
	snap, c := fig10Campaign(t, 17)
	c.Objects = NewMemObjects()
	ref, err := Run(context.Background(), snap, c)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, snap, c)
	if err != nil {
		t.Fatalf("cancelled run: %v", err)
	}
	if res.State != StatePaused {
		t.Fatalf("cancelled run terminal = %s, want paused\nlog:\n%s", res.State, res.Log)
	}
	res, err = Resume(context.Background(), res.Checkpoint, c)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	requireSameTerminal(t, ref, res)
}
