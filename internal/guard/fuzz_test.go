package guard

import (
	"bytes"
	"testing"
)

// fuzzSeedReports are the structured seeds behind the checked-in corpus:
// a rich report, a minimal one, and edge shapes (empty lists, empty
// strings, negative virtual time).
func fuzzSeedReports() []*IncidentReport {
	return []*IncidentReport{
		{
			Campaign: "fig10-guarded", Wave: 1, Attempt: 2, TimeNs: 123456789,
			LastGood:    "a4d186b7ade1deadbeefcafe",
			Quarantined: []string{"ssw.pl0.0", "ssw.pl0.1"},
			Violations: []Violation{
				{Check: "session-downs", Devices: []string{"ssw.pl0.0"}, Detail: "1 > 0"},
				{Check: "share", Detail: "0.812 > 0.600"},
			},
			Log: "wave 1 attempt 2: VIOLATION session-downs\nwave 1: pause; roll back\n",
		},
		{Campaign: "empty", Log: ""},
		{Campaign: "", Wave: 0, Attempt: 0, TimeNs: -1, LastGood: "", Log: "x"},
		{
			Campaign: "one-violation-no-devices",
			Violations: []Violation{
				{Check: "execute-error", Detail: "wave 0 device fsw.pod0.0: deploy refused"},
			},
			Log: "short",
		},
	}
}

// FuzzIncidentReport holds the incident-report codec to the same line as
// the store's FuzzWALRecord: arbitrary input never panics, every
// successful decode consumes the whole buffer, and every decoded report
// re-encodes to the exact bytes it came from (the codec is canonical).
func FuzzIncidentReport(f *testing.F) {
	for _, r := range fuzzSeedReports() {
		f.Add(EncodeIncidentReport(r))
	}
	// Truncations, corrupt magic, and junk get the mutator started on the
	// reject paths.
	valid := EncodeIncidentReport(fuzzSeedReports()[0])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("CGI1"))
	f.Add([]byte("CGI2\x01junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeIncidentReport(data)
		if err != nil {
			return
		}
		re := EncodeIncidentReport(r)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not a fixed point:\n in: %x\nout: %x", data, re)
		}
		// And the re-decoded report matches field-for-field.
		r2, err := DecodeIncidentReport(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if r2.Campaign != r.Campaign || r2.Wave != r.Wave || r2.Attempt != r.Attempt ||
			r2.TimeNs != r.TimeNs || r2.LastGood != r.LastGood || r2.Log != r.Log ||
			len(r2.Quarantined) != len(r.Quarantined) || len(r2.Violations) != len(r.Violations) {
			t.Fatalf("re-decode diverged: %+v vs %+v", r2, r)
		}
	})
}

func TestIncidentReportRejectsNonMinimalVarints(t *testing.T) {
	valid := EncodeIncidentReport(fuzzSeedReports()[1])
	// The campaign-name length (5) sits right after magic+version; pad
	// its uvarint to two bytes (0x85 0x00 still decodes to 5 loosely).
	padded := append([]byte{}, valid[:5]...)
	padded = append(padded, 0x85, 0x00)
	padded = append(padded, valid[6:]...)
	if _, err := DecodeIncidentReport(padded); err == nil {
		t.Fatalf("non-minimal uvarint accepted")
	}
}
