package guard

import (
	"context"
	"testing"
	"time"

	"centralium/internal/fabric"
	"centralium/internal/planner"
	"centralium/internal/topo"
)

// BenchmarkGuardedCampaign times one clean guarded fig10 campaign end to
// end (restore, three probed waves, per-wave captures, checkpoints).
func BenchmarkGuardedCampaign(b *testing.B) {
	snap, p, err := planner.ScenarioSetup("fig10", 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := FromParams(p)
		c.Name = "bench"
		res, err := Run(context.Background(), snap, c)
		if err != nil {
			b.Fatal(err)
		}
		if res.State != StateCompleted {
			b.Fatalf("campaign ended %s", res.State)
		}
	}
}

// BenchmarkGuardRollback times detection-plus-rollback: a session-down
// storm hits wave 0 and the guard aborts to last-good without retrying.
func BenchmarkGuardRollback(b *testing.B) {
	snap, p, err := planner.ScenarioSetup("fig10", 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := FromParams(p)
		c.Name = "bench"
		c.Retry.MaxRetries = -1
		c.Instrument = func(n *fabric.Network, wave, attempt int) {
			if wave == 0 && attempt == 0 {
				n.After(time.Millisecond, func() {
					n.RestartDevice(topo.SSWID(0, 0), 2*time.Millisecond, false)
				})
			}
		}
		res, err := Run(context.Background(), snap, c)
		if err != nil {
			b.Fatal(err)
		}
		if res.State != StateAborted {
			b.Fatalf("campaign ended %s", res.State)
		}
	}
}
