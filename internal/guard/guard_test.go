package guard

import (
	"context"
	"strings"
	"testing"
	"time"

	"centralium/internal/fabric"
	"centralium/internal/planner"
	"centralium/internal/snapshot"
	"centralium/internal/topo"
)

// fig10Campaign builds the small Figure 10 equalization campaign the
// guard tests run: a quiescent base snapshot plus a campaign derived
// from the scenario's planner parameters.
func fig10Campaign(t testing.TB, seed int64) (*snapshot.Snapshot, Campaign) {
	t.Helper()
	snap, p, err := planner.ScenarioSetup("fig10", seed)
	if err != nil {
		t.Fatalf("scenario setup: %v", err)
	}
	c := FromParams(p)
	c.Name = "fig10-guarded"
	return snap, c
}

func TestCleanCampaignCompletes(t *testing.T) {
	snap, c := fig10Campaign(t, 1)
	res, err := Run(context.Background(), snap, c)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.State != StateCompleted {
		t.Fatalf("state = %s, want completed\nlog:\n%s", res.State, res.Log)
	}
	if res.WavesDone != res.Waves || res.Waves == 0 {
		t.Fatalf("waves done %d of %d", res.WavesDone, res.Waves)
	}
	if res.Retries != 0 || res.Rollbacks != 0 {
		t.Fatalf("clean campaign used %d retries, %d rollbacks\nlog:\n%s", res.Retries, res.Rollbacks, res.Log)
	}
	if res.Net == nil || res.Snapshot == nil {
		t.Fatalf("terminal result missing fabric state")
	}
	if !strings.Contains(res.Log, "campaign complete") {
		t.Fatalf("log missing completion line:\n%s", res.Log)
	}
}

func TestCleanCampaignDeterministicAcrossWidths(t *testing.T) {
	var logs []string
	for _, workers := range []int{1, 4} {
		snap, c := fig10Campaign(t, 7)
		c.Workers = workers
		res, err := Run(context.Background(), snap, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		logs = append(logs, res.Log)
	}
	if logs[0] != logs[1] {
		t.Fatalf("decision logs diverge across widths:\n--- w=1 ---\n%s\n--- w=4 ---\n%s", logs[0], logs[1])
	}
}

func TestViolationRetriesThenCompletes(t *testing.T) {
	snap, c := fig10Campaign(t, 3)
	// A transient fault: restart a spine during wave 1, attempt 0 only.
	// The session-downs envelope trips, the guard rolls back and retries,
	// and the clean retry completes the campaign.
	c.Instrument = func(n *fabric.Network, wave, attempt int) {
		if wave == 1 && attempt == 0 {
			n.After(time.Millisecond, func() {
				n.RestartDevice(topo.SSWID(0, 0), 2*time.Millisecond, false)
			})
		}
	}
	res, err := Run(context.Background(), snap, c)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.State != StateCompleted {
		t.Fatalf("state = %s, want completed\nlog:\n%s", res.State, res.Log)
	}
	if res.Retries == 0 || res.Rollbacks == 0 {
		t.Fatalf("fault did not force a retry (retries=%d rollbacks=%d)\nlog:\n%s", res.Retries, res.Rollbacks, res.Log)
	}
	if !strings.Contains(res.Log, "VIOLATION session-downs") {
		t.Fatalf("log missing session-downs violation:\n%s", res.Log)
	}
}

func TestPersistentFaultQuarantinesAndAborts(t *testing.T) {
	snap, c := fig10Campaign(t, 5)
	c.Retry.MaxRetries = 1
	// The fault re-arms on every attempt: the retry budget runs out and
	// the campaign aborts with the restarted device quarantined.
	c.Instrument = func(n *fabric.Network, wave, attempt int) {
		if wave == 1 {
			n.After(time.Millisecond, func() {
				n.RestartDevice(topo.SSWID(0, 0), 2*time.Millisecond, false)
			})
		}
	}
	res, err := Run(context.Background(), snap, c)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.State != StateAborted {
		t.Fatalf("state = %s, want aborted\nlog:\n%s", res.State, res.Log)
	}
	if res.Report == nil || res.Report.Wave != 1 {
		t.Fatalf("missing or mislocated incident report: %+v", res.Report)
	}
	if len(res.Quarantined) == 0 {
		t.Fatalf("abort quarantined nobody\nlog:\n%s", res.Log)
	}
	// The incident report round-trips through its codec.
	back, err := DecodeIncidentReport(EncodeIncidentReport(res.Report))
	if err != nil {
		t.Fatalf("report round trip: %v", err)
	}
	if back.Campaign != res.Report.Campaign || back.Log != res.Report.Log {
		t.Fatalf("report round trip diverged")
	}
	if res.WavesDone != 1 {
		t.Fatalf("waves done = %d, want 1 (aborted at wave 1)", res.WavesDone)
	}
}
