// Package openr implements the management substrate the paper's Centralium
// rides on: an Open/R-inspired link-state protocol (Section A.2) providing
// a resilient out-of-band network between the controller and every switch.
// Each node floods sequence-numbered adjacency LSAs and runs SPF over its
// own link-state database, so management reachability survives failures on
// any path that still exists — and the controller's device-failure
// detection (Section 5.2) can distinguish "device down" from "path down".
//
// The implementation is a deterministic message-passing simulation over the
// same topology the BGP fabric uses: flooding exchanges explicit messages
// (counted), and every node's view is exactly its own LSDB — a partitioned
// node keeps a stale view, as real link-state protocols do.
package openr

import (
	"container/heap"
	"fmt"
	"sort"

	"centralium/internal/topo"
)

// LSA is one node's adjacency advertisement.
type LSA struct {
	Origin    topo.DeviceID
	Seq       uint64
	Neighbors []topo.DeviceID // live adjacencies at flood time
}

// linkKey canonicalizes an undirected pair.
type linkKey struct{ a, b topo.DeviceID }

func keyOf(a, b topo.DeviceID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// node is the per-device protocol state.
type node struct {
	id   topo.DeviceID
	lsdb map[topo.DeviceID]LSA
	seq  uint64
}

// message is one flooded LSA in flight.
type message struct {
	from, to topo.DeviceID
	lsa      LSA
}

// Domain is one link-state routing domain over a topology.
type Domain struct {
	topo     *topo.Topology
	nodes    map[topo.DeviceID]*node
	linkDown map[linkKey]bool
	nodeDown map[topo.DeviceID]bool

	queue    []message
	messages int64 // cumulative flood messages delivered
}

// New builds a domain with every device and link up, fully converged.
func New(t *topo.Topology) *Domain {
	d := &Domain{
		topo:     t,
		nodes:    make(map[topo.DeviceID]*node),
		linkDown: make(map[linkKey]bool),
		nodeDown: make(map[topo.DeviceID]bool),
	}
	for _, dev := range t.Devices() {
		d.nodes[dev.ID] = &node{id: dev.ID, lsdb: make(map[topo.DeviceID]LSA)}
	}
	for _, dev := range t.Devices() {
		d.originate(dev.ID)
	}
	d.Converge()
	return d
}

// liveNeighbors returns a node's up adjacencies under the current failure
// set, deduplicated and sorted.
func (d *Domain) liveNeighbors(id topo.DeviceID) []topo.DeviceID {
	if d.nodeDown[id] {
		return nil
	}
	seen := make(map[topo.DeviceID]bool)
	var out []topo.DeviceID
	for _, nb := range d.topo.Neighbors(id) {
		if seen[nb] || d.nodeDown[nb] || d.linkDown[keyOf(id, nb)] {
			continue
		}
		seen[nb] = true
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// originate bumps a node's own LSA and queues it toward its live neighbors.
func (d *Domain) originate(id topo.DeviceID) {
	n := d.nodes[id]
	if n == nil || d.nodeDown[id] {
		return
	}
	n.seq++
	lsa := LSA{Origin: id, Seq: n.seq, Neighbors: d.liveNeighbors(id)}
	n.lsdb[id] = lsa
	for _, nb := range lsa.Neighbors {
		d.queue = append(d.queue, message{from: id, to: nb, lsa: lsa})
	}
}

// Converge processes the flood queue to quiescence and returns the number
// of messages delivered.
func (d *Domain) Converge() int64 {
	var delivered int64
	for len(d.queue) > 0 {
		m := d.queue[0]
		d.queue = d.queue[1:]
		// A message only arrives if the link and endpoints are still up.
		if d.nodeDown[m.to] || d.nodeDown[m.from] || d.linkDown[keyOf(m.from, m.to)] {
			continue
		}
		delivered++
		d.messages++
		n := d.nodes[m.to]
		if cur, ok := n.lsdb[m.lsa.Origin]; ok && cur.Seq >= m.lsa.Seq {
			continue // stale or duplicate
		}
		n.lsdb[m.lsa.Origin] = m.lsa
		// Re-flood to all live neighbors except the sender.
		for _, nb := range d.liveNeighbors(m.to) {
			if nb == m.from {
				continue
			}
			d.queue = append(d.queue, message{from: m.to, to: nb, lsa: m.lsa})
		}
	}
	return delivered
}

// Messages returns cumulative flood messages delivered.
func (d *Domain) Messages() int64 { return d.messages }

// SetLinkUp fails or restores all links between a and b, refloods the
// affected LSAs, and converges. A restored adjacency performs a full
// database exchange, as link-state protocols do on adjacency formation.
func (d *Domain) SetLinkUp(a, b topo.DeviceID, up bool) {
	d.linkDown[keyOf(a, b)] = !up
	d.originate(a)
	d.originate(b)
	if up {
		d.syncAdjacency(a, b)
	}
	d.Converge()
}

// syncAdjacency queues both endpoints' complete LSDBs toward each other —
// the database-exchange step of adjacency establishment. Without it a
// recovering node would only ever learn LSAs that happen to be re-flooded.
func (d *Domain) syncAdjacency(a, b topo.DeviceID) {
	if d.nodeDown[a] || d.nodeDown[b] || d.linkDown[keyOf(a, b)] {
		return
	}
	for _, pair := range [2][2]topo.DeviceID{{a, b}, {b, a}} {
		from, to := pair[0], pair[1]
		n := d.nodes[from]
		for _, lsa := range n.lsdb {
			d.queue = append(d.queue, message{from: from, to: to, lsa: lsa})
		}
	}
}

// SetNodeUp fails or restores a device. A recovering node comes back with
// an empty LSDB and relearns the domain (its neighbors reflood on
// adjacency change).
func (d *Domain) SetNodeUp(id topo.DeviceID, up bool) {
	if d.nodeDown[id] == !up {
		return
	}
	d.nodeDown[id] = !up
	if up {
		// Fresh restart: wipe state, keep the monotonically increasing seq
		// (real implementations persist it to beat stale copies).
		n := d.nodes[id]
		n.lsdb = make(map[topo.DeviceID]LSA)
		d.originate(id)
	}
	for _, nb := range d.topo.Neighbors(id) {
		d.originate(nb)
		if up {
			d.syncAdjacency(id, nb)
		}
	}
	d.Converge()
}

// spfEntry is one SPF result row.
type spfEntry struct {
	dist    int
	nextHop topo.DeviceID
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	id   topo.DeviceID
	dist int
}
type pq []pqItem

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].id < p[j].id
}
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// spf runs Dijkstra over one node's LSDB. An edge exists only if BOTH
// endpoints advertise it (bidirectional check, as Open/R requires).
func (d *Domain) spf(from topo.DeviceID) map[topo.DeviceID]spfEntry {
	n := d.nodes[from]
	if n == nil || d.nodeDown[from] {
		return nil
	}
	adj := func(id topo.DeviceID) []topo.DeviceID {
		lsa, ok := n.lsdb[id]
		if !ok {
			return nil
		}
		var out []topo.DeviceID
		for _, nb := range lsa.Neighbors {
			peer, ok := n.lsdb[nb]
			if !ok {
				continue
			}
			for _, back := range peer.Neighbors {
				if back == id {
					out = append(out, nb)
					break
				}
			}
		}
		return out
	}
	dist := map[topo.DeviceID]spfEntry{from: {dist: 0}}
	frontier := &pq{{id: from, dist: 0}}
	for frontier.Len() > 0 {
		cur := heap.Pop(frontier).(pqItem)
		if cur.dist > dist[cur.id].dist {
			continue
		}
		for _, nb := range adj(cur.id) {
			nd := cur.dist + 1
			if e, ok := dist[nb]; ok && e.dist <= nd {
				continue
			}
			nh := dist[cur.id].nextHop
			if cur.id == from {
				nh = nb // first hop
			}
			dist[nb] = spfEntry{dist: nd, nextHop: nh}
			heap.Push(frontier, pqItem{id: nb, dist: nd})
		}
	}
	return dist
}

// Reachable reports whether `from`'s LSDB believes `to` is reachable. A
// stale LSDB can believe wrongly — use Probe for ground truth.
func (d *Domain) Reachable(from, to topo.DeviceID) bool {
	_, ok := d.spf(from)[to]
	return ok
}

// NextHop returns `from`'s computed next hop toward `to`.
func (d *Domain) NextHop(from, to topo.DeviceID) (topo.DeviceID, bool) {
	e, ok := d.spf(from)[to]
	if !ok || from == to {
		return "", from == to
	}
	return e.nextHop, true
}

// Path returns the hop sequence from -> to per `from`'s LSDB (inclusive),
// or nil when unreachable.
func (d *Domain) Path(from, to topo.DeviceID) []topo.DeviceID {
	if from == to {
		return []topo.DeviceID{from}
	}
	path := []topo.DeviceID{from}
	cur := from
	for steps := 0; steps <= d.topo.NumDevices(); steps++ {
		nh, ok := d.NextHop(cur, to)
		if !ok || nh == "" {
			return nil
		}
		path = append(path, nh)
		if nh == to {
			return path
		}
		cur = nh
	}
	return nil
}

// Probe walks the hop-by-hop forwarding decision against ground truth:
// it reports whether a management packet from -> to actually gets through
// the current failure set. This is what the controller's device-failure
// detection uses: Reachable(false) means the fleet view says down;
// Reachable(true) && Probe(false) means the view is stale (converging).
func (d *Domain) Probe(from, to topo.DeviceID) bool {
	if d.nodeDown[from] || d.nodeDown[to] {
		return false
	}
	if from == to {
		return true
	}
	cur := from
	for steps := 0; steps <= d.topo.NumDevices(); steps++ {
		nh, ok := d.NextHop(cur, to)
		if !ok || nh == "" {
			return false
		}
		// Ground truth: the hop must actually be up.
		if d.nodeDown[nh] || d.linkDown[keyOf(cur, nh)] {
			return false
		}
		if nh == to {
			return true
		}
		cur = nh
	}
	return false
}

// UnreachableFrom lists devices a management source cannot actually reach —
// the input to "alerting network operators of unexpected device
// unavailability" (Section 5.2).
func (d *Domain) UnreachableFrom(source topo.DeviceID) []topo.DeviceID {
	var out []topo.DeviceID
	for _, dev := range d.topo.Devices() {
		if dev.ID == source {
			continue
		}
		if !d.Probe(source, dev.ID) {
			out = append(out, dev.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the domain for debugging.
func (d *Domain) String() string {
	down := 0
	for _, v := range d.nodeDown {
		if v {
			down++
		}
	}
	return fmt.Sprintf("openr: %d nodes (%d down), %d flood messages", len(d.nodes), down, d.messages)
}
