package openr

import (
	"strings"
	"testing"
	"testing/quick"

	"centralium/internal/topo"
)

// square builds a 4-cycle a-b-c-d-a.
func square() *topo.Topology {
	t := topo.New()
	for _, id := range []topo.DeviceID{"a", "b", "c", "d"} {
		t.AddDevice(topo.Device{ID: id})
	}
	t.AddLink("a", "b", 100)
	t.AddLink("b", "c", 100)
	t.AddLink("c", "d", 100)
	t.AddLink("d", "a", 100)
	return t
}

func TestFullReachabilityAfterConvergence(t *testing.T) {
	d := New(square())
	for _, from := range []topo.DeviceID{"a", "b", "c", "d"} {
		for _, to := range []topo.DeviceID{"a", "b", "c", "d"} {
			if !d.Reachable(from, to) {
				t.Errorf("%s cannot reach %s", from, to)
			}
			if !d.Probe(from, to) {
				t.Errorf("probe %s->%s failed", from, to)
			}
		}
	}
	if d.Messages() == 0 {
		t.Error("no flood messages counted")
	}
	if !strings.Contains(d.String(), "4 nodes") {
		t.Errorf("String = %q", d.String())
	}
}

func TestShortestPathsAndNextHops(t *testing.T) {
	d := New(square())
	// a->c has two equal 2-hop paths; next hop must be deterministic (b,
	// the lexicographically first).
	nh, ok := d.NextHop("a", "c")
	if !ok || nh != "b" {
		t.Fatalf("NextHop(a,c) = %v,%v", nh, ok)
	}
	path := d.Path("a", "c")
	if len(path) != 3 || path[0] != "a" || path[2] != "c" {
		t.Fatalf("Path(a,c) = %v", path)
	}
	if p := d.Path("a", "a"); len(p) != 1 {
		t.Fatalf("Path(a,a) = %v", p)
	}
	if nh, ok := d.NextHop("a", "a"); !ok || nh != "" {
		t.Fatalf("NextHop(a,a) = %v,%v", nh, ok)
	}
}

func TestLinkFailureReroutes(t *testing.T) {
	d := New(square())
	d.SetLinkUp("a", "b", false)
	// a still reaches b the long way around.
	if !d.Probe("a", "b") {
		t.Fatal("a cannot reach b after single link failure")
	}
	path := d.Path("a", "b")
	if len(path) != 4 { // a-d-c-b
		t.Fatalf("Path(a,b) = %v, want 3 hops", path)
	}
	d.SetLinkUp("a", "b", true)
	if got := d.Path("a", "b"); len(got) != 2 {
		t.Fatalf("Path(a,b) after recovery = %v", got)
	}
}

func TestPartitionDetection(t *testing.T) {
	d := New(square())
	// Cut both of a's links: a is isolated.
	d.SetLinkUp("a", "b", false)
	d.SetLinkUp("a", "d", false)
	if d.Probe("b", "a") {
		t.Fatal("probe into partition succeeded")
	}
	un := d.UnreachableFrom("b")
	if len(un) != 1 || un[0] != "a" {
		t.Fatalf("UnreachableFrom(b) = %v, want [a]", un)
	}
	// a's own (stale or not) view cannot probe out either.
	if d.Probe("a", "c") {
		t.Fatal("probe out of partition succeeded")
	}
}

func TestNodeFailureAndRecovery(t *testing.T) {
	d := New(square())
	d.SetNodeUp("b", false)
	if d.Probe("a", "b") {
		t.Fatal("probe to dead node succeeded")
	}
	// Traffic reroutes around the dead node.
	if !d.Probe("a", "c") {
		t.Fatal("a cannot reach c around dead b")
	}
	if got := d.Path("a", "c"); len(got) != 3 || got[1] != "d" {
		t.Fatalf("Path(a,c) = %v, want via d", got)
	}
	un := d.UnreachableFrom("a")
	if len(un) != 1 || un[0] != "b" {
		t.Fatalf("UnreachableFrom(a) = %v", un)
	}
	// Recovery: b relearns the whole domain from scratch.
	d.SetNodeUp("b", true)
	d.SetNodeUp("b", true) // idempotent
	for _, to := range []topo.DeviceID{"a", "c", "d"} {
		if !d.Probe("b", to) {
			t.Errorf("recovered b cannot reach %s", to)
		}
	}
	if got := d.Path("a", "b"); len(got) != 2 {
		t.Fatalf("Path(a,b) after recovery = %v", got)
	}
}

func TestFabricScaleConvergence(t *testing.T) {
	tp := topo.BuildFabric(topo.FabricParams{})
	d := New(tp)
	devs := tp.Devices()
	// Management full mesh: every device reaches every other.
	src := devs[0].ID
	if un := d.UnreachableFrom(src); len(un) != 0 {
		t.Fatalf("unreachable from %s: %v", src, un)
	}
	// The OoB property: even with a whole spine plane down, management
	// reachability to the rest survives.
	for _, ssw := range tp.ByLayer(topo.LayerSSW) {
		if ssw.Plane == 0 {
			d.SetNodeUp(ssw.ID, false)
		}
	}
	un := d.UnreachableFrom(topo.RSWID(0, 0))
	for _, id := range un {
		if tp.Device(id).Layer != topo.LayerSSW {
			t.Errorf("collateral unreachability: %s", id)
		}
	}
}

func TestStaleViewDuringChurn(t *testing.T) {
	// Reachable (belief) vs Probe (truth): cut a link but suppress
	// convergence by manipulating queue order — here we simply verify the
	// two APIs agree after convergence, and that Probe validates hops
	// against ground truth by failing a mid-path link.
	tp := topo.New()
	for _, id := range []topo.DeviceID{"x", "y", "z"} {
		tp.AddDevice(topo.Device{ID: id})
	}
	tp.AddLink("x", "y", 100)
	tp.AddLink("y", "z", 100)
	d := New(tp)
	if !d.Probe("x", "z") {
		t.Fatal("line probe failed")
	}
	d.SetLinkUp("y", "z", false)
	if d.Reachable("x", "z") {
		t.Fatal("converged view still believes z reachable")
	}
	if d.Probe("x", "z") {
		t.Fatal("probe through dead link succeeded")
	}
}

func TestFloodingIdempotentProperty(t *testing.T) {
	// Property: repeated failing/restoring of a random link always returns
	// to full reachability.
	tp := topo.BuildMesh(topo.MeshParams{Planes: 2, Grids: 2, PerGroup: 2})
	links := tp.Links()
	f := func(li uint8, times uint8) bool {
		d := New(tp)
		l := links[int(li)%len(links)]
		for k := 0; k < int(times%4)+1; k++ {
			d.SetLinkUp(l.A, l.B, false)
			d.SetLinkUp(l.A, l.B, true)
		}
		return len(d.UnreachableFrom(tp.Devices()[0].ID)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
