package planner

import (
	"strings"
	"testing"
)

// benchSetup is the small fig10 planning problem both benchmarks share:
// the SSW+FA column (4 devices), so the exhaustive sweep stays at 24
// permutations and the two numbers are directly comparable.
func benchSetup(b *testing.B) (snapEnc []byte, p Params) {
	b.Helper()
	snap, params, err := ScenarioSetup("fig10", 42)
	if err != nil {
		b.Fatal(err)
	}
	for d := range params.Intent {
		if !strings.HasPrefix(string(d), "ssw.") && !strings.HasPrefix(string(d), "fa.") {
			delete(params.Intent, d)
		}
	}
	enc, err := snap.Encode()
	if err != nil {
		b.Fatal(err)
	}
	return enc, params
}

// BenchmarkPlanner measures one full beam search (fork, execute,
// score, memoize) on the small fig10 problem.
func BenchmarkPlanner(b *testing.B) {
	enc, p := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := newSearchFromState(enc, p)
		if err != nil {
			b.Fatal(err)
		}
		for {
			done, err := s.Step()
			if err != nil {
				b.Fatal(err)
			}
			if done {
				break
			}
		}
		if _, err := s.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExhaustive measures the brute-force reference on the same
// problem: every batch-1 permutation scored through the shared memo.
func BenchmarkExhaustive(b *testing.B) {
	enc, p := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := newSearchFromState(enc, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := exhaustiveOn(s); err != nil {
			b.Fatal(err)
		}
	}
}
