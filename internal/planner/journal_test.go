package planner

// Journaled-search determinism: interrupting a search at any journaled
// level and resuming from the journal's latest checkpoint must converge
// on the byte-identical winner of the uninterrupted run.

import (
	"fmt"
	"testing"
)

// memJournal keeps every saved checkpoint, latest last.
type memJournal struct {
	levels []int
	saves  [][]byte
}

func (m *memJournal) SaveProgress(level int, checkpoint []byte) error {
	m.levels = append(m.levels, level)
	m.saves = append(m.saves, append([]byte(nil), checkpoint...))
	return nil
}

func TestRunJournaledMatchesPlain(t *testing.T) {
	snap, p, err := ScenarioSetup("fig10", 1)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	p.Beam = 2
	p.RandomCands = -1

	want, err := Plan(snap, p)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}

	s, err := NewSearch(snap, p)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	j := &memJournal{}
	got, err := RunJournaled(s, j)
	if err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	if got.Winner.String() != want.Winner.String() || got.Score != want.Score {
		t.Fatalf("journaled winner diverged: %s (%v) vs %s (%v)",
			got.Winner, got.Score, want.Winner, want.Score)
	}
	if len(j.saves) == 0 {
		t.Fatalf("journal recorded no progress")
	}
	for i := 1; i < len(j.levels); i++ {
		if j.levels[i] <= j.levels[i-1] {
			t.Fatalf("journal levels not increasing: %v", j.levels)
		}
	}
}

// TestResumeFromEveryJournaledLevel kills the search after each level
// and resumes from the journal: every resumption lands on the same
// winner, score, and stats as the uninterrupted run.
func TestResumeFromEveryJournaledLevel(t *testing.T) {
	snap, p, err := ScenarioSetup("fig10", 1)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	p.Beam = 2
	p.RandomCands = -1

	ref, err := NewSearch(snap, p)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	j := &memJournal{}
	want, err := RunJournaled(ref, j)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(j.saves) < 2 {
		t.Fatalf("search too shallow to interrupt (%d levels)", len(j.saves))
	}
	for i, cp := range j.saves {
		t.Run(fmt.Sprintf("killed-after-level-%d", j.levels[i]), func(t *testing.T) {
			s, err := ResumeSearch(cp)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			got, err := RunJournaled(s, &memJournal{})
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if got.Winner.String() != want.Winner.String() || got.Score != want.Score {
				t.Fatalf("resumed winner diverged: %s (%v) vs %s (%v)",
					got.Winner, got.Score, want.Winner, want.Score)
			}
			// The memo rides in the checkpoint, so even the work counters
			// are indistinguishable from the uninterrupted run.
			if got.Stats != want.Stats {
				t.Fatalf("resumed stats diverged: %+v vs %+v", got.Stats, want.Stats)
			}
		})
	}
}

// TestStepJournaledSurfacesJournalErrors: a failing journal aborts the
// step rather than silently continuing without durability.
func TestStepJournaledSurfacesJournalErrors(t *testing.T) {
	snap, p, err := ScenarioSetup("fig10", 1)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	p.Beam = 2
	p.RandomCands = -1
	s, err := NewSearch(snap, p)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	boom := JournalFunc(func(int, []byte) error { return fmt.Errorf("disk full") })
	if _, err := s.StepJournaled(boom); err == nil {
		t.Fatalf("journal failure not surfaced")
	}
}
