package planner

// Mid-search checkpointing. A Checkpoint freezes the beam between levels
// — the schedule prefixes, their scores, and the encoded fabric states
// they reach — together with the search parameters, the completed
// candidates, and the expansion memo. Resuming from a checkpoint makes
// the search observably indistinguishable from the uninterrupted run:
// not just the byte-identical winning schedule (candidate generation
// depends only on (seed, level, node index), and state fingerprints are
// recomputed from the serialized snapshots) but identical work counters
// too — the memo rides along precisely so a resumed search memo-hits
// where the uninterrupted one would have, keeping Stats deterministic
// across any kill/resume pacing. That is what lets centraliumd's
// crash-recovery conformance demand byte-identical final responses.

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sort"
)

// checkpointVersion guards the serialized layout.
const checkpointVersion = 1

// nodeCheckpoint is one serialized beam entry.
type nodeCheckpoint struct {
	Schedule string `json:"schedule"`
	Score    Score  `json:"score"`
	// State is the base64 of the node's encoded snapshot.
	State string `json:"state"`
}

// candidateCheckpoint is one serialized completed candidate.
type candidateCheckpoint struct {
	Schedule string `json:"schedule"`
	Score    Score  `json:"score"`
}

// memoCheckpoint is one serialized expansion-memo entry.
type memoCheckpoint struct {
	Key string      `json:"key"`
	Out StepOutcome `json:"out"`
	// Child is the base64 of the expansion's resulting state (empty for
	// migration-body entries, which cache only the outcome).
	Child string `json:"child,omitempty"`
}

// Checkpoint is a serializable between-levels search state.
type Checkpoint struct {
	Version   int                   `json:"version"`
	Params    Params                `json:"params"`
	Level     int                   `json:"level"`
	Done      bool                  `json:"done"`
	Base      string                `json:"base"`
	Beam      []nodeCheckpoint      `json:"beam"`
	Completed []candidateCheckpoint `json:"completed"`
	Memo      []memoCheckpoint      `json:"memo,omitempty"`
	Stats     Stats                 `json:"stats"`
}

// Checkpoint freezes the search. Call it between Step calls only.
func (s *Search) Checkpoint() ([]byte, error) {
	cp := Checkpoint{
		Version: checkpointVersion,
		Params:  s.p,
		Level:   s.level,
		Done:    s.done,
		Base:    base64.StdEncoding.EncodeToString(s.base),
		Stats:   s.stats,
	}
	for _, nd := range s.beam {
		cp.Beam = append(cp.Beam, nodeCheckpoint{
			Schedule: nd.sched.String(),
			Score:    nd.score,
			State:    base64.StdEncoding.EncodeToString(nd.state),
		})
	}
	for _, c := range s.completed {
		cp.Completed = append(cp.Completed, candidateCheckpoint{
			Schedule: c.Schedule.String(),
			Score:    c.Score,
		})
	}
	// The memo serializes sorted by key so checkpoint bytes are a pure
	// function of search state. Step never runs concurrently with
	// Checkpoint (both are between-levels operations), but the lock
	// keeps the read honest anyway.
	s.mu.Lock()
	keys := make([]string, 0, len(s.memo))
	for k := range s.memo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		me := s.memo[k]
		mc := memoCheckpoint{Key: k, Out: me.out}
		if me.child != nil {
			mc.Child = base64.StdEncoding.EncodeToString(me.child)
		}
		cp.Memo = append(cp.Memo, mc)
	}
	s.mu.Unlock()
	return json.MarshalIndent(cp, "", "  ")
}

// ResumeSearch rebuilds a search from a checkpoint. The resumed search
// continues from the frozen level and converges on the same winner as
// the uninterrupted run.
func ResumeSearch(data []byte) (*Search, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("planner: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("planner: checkpoint version %d (want %d)", cp.Version, checkpointVersion)
	}
	base, err := base64.StdEncoding.DecodeString(cp.Base)
	if err != nil {
		return nil, fmt.Errorf("planner: checkpoint base state: %w", err)
	}
	s, err := newSearchFromState(base, cp.Params)
	if err != nil {
		return nil, err
	}
	s.level = cp.Level
	s.done = cp.Done
	s.stats = cp.Stats
	s.beam = s.beam[:0]
	for _, nc := range cp.Beam {
		sched, err := Parse(nc.Schedule)
		if err != nil {
			return nil, fmt.Errorf("planner: checkpoint beam: %w", err)
		}
		state, err := base64.StdEncoding.DecodeString(nc.State)
		if err != nil {
			return nil, fmt.Errorf("planner: checkpoint beam state: %w", err)
		}
		s.beam = append(s.beam, node{sched: sched, score: nc.Score, state: state, fp: fingerprint(state)})
	}
	for _, cc := range cp.Completed {
		sched, err := Parse(cc.Schedule)
		if err != nil {
			return nil, fmt.Errorf("planner: checkpoint candidate: %w", err)
		}
		s.completed = append(s.completed, Candidate{Schedule: sched, Score: cc.Score})
	}
	for _, mc := range cp.Memo {
		me := memoEntry{out: mc.Out}
		if mc.Child != "" {
			child, err := base64.StdEncoding.DecodeString(mc.Child)
			if err != nil {
				return nil, fmt.Errorf("planner: checkpoint memo state: %w", err)
			}
			me.child = child
			me.fp = fingerprint(child)
		}
		s.memo[mc.Key] = me
	}
	return s, nil
}
