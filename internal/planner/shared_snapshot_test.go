package planner

import (
	"sync"
	"testing"
)

// TestSharedSnapshotConcurrentSearches pins the serving-path contract: many
// searches may be constructed and scored concurrently against one shared
// base snapshot (the centraliumd snapshot cache hands the same *Snapshot
// to every request). NewSearch must treat the snapshot as read-only —
// an earlier stateBytes implementation swapped Meta in place, which the
// race detector catches here — and every concurrent scoring must match
// the serial reference byte for byte.
func TestSharedSnapshotConcurrentSearches(t *testing.T) {
	snap, p, err := ScenarioSetup("fig10", 1)
	if err != nil {
		t.Fatal(err)
	}
	snap.Meta["origin"] = "shared-base"

	ref, err := NewSearch(snap, p)
	if err != nil {
		t.Fatal(err)
	}
	baseline := ref.BaselineSchedule()
	refRep, err := ScoreSchedule(snap, p, baseline)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	totals := make([]Score, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := ScoreSchedule(snap, p, baseline)
			if err != nil {
				errs[i] = err
				return
			}
			totals[i] = rep.Total
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if totals[i] != refRep.Total {
			t.Errorf("goroutine %d: score %v diverged from serial %v", i, totals[i], refRep.Total)
		}
	}
	if snap.Meta["origin"] != "shared-base" {
		t.Error("shared snapshot Meta mutated by concurrent searches")
	}
}
