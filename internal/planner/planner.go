package planner

import (
	"fmt"
	"sort"
	"sync"

	"centralium/internal/controller"
	"centralium/internal/fabric"
	"centralium/internal/snapshot"
	"centralium/internal/topo"
	"centralium/internal/traffic"
)

// Params configures one planning run. Everything in here is plain data
// (no closures), so a mid-search checkpoint can serialize the whole
// search including its parameters.
type Params struct {
	// Seed drives candidate generation. Same seed, same snapshot, same
	// winning schedule — byte for byte, at any worker count.
	Seed int64 `json:"seed"`

	// Intent is the migration's per-device RPA assignment (from
	// migrate.RPAIntentFor or a controller application).
	Intent controller.Intent `json:"intent"`
	// OriginAltitude anchors the §5.3.2 layer ordering (the baseline and
	// the bottom-up candidate family).
	OriginAltitude int `json:"origin_altitude"`

	// Demands is the workload the transient metrics are computed under.
	Demands []traffic.Demand `json:"demands"`
	// Watch is the device set whose peak traffic share defines the
	// funneling metric (the hot layer of Figures 2/4/10).
	Watch []topo.DeviceID `json:"watch"`
	// FairShare is the reference share for the funneling detector
	// (0 gets 1/len(Watch)).
	FairShare float64 `json:"fair_share"`
	// BlackholeEps is the black-holed fraction above which virtual time
	// counts toward the black-hole window (0 gets 0.001).
	BlackholeEps float64 `json:"blackhole_eps"`

	// Drain, when non-empty, is the migration body executed after full
	// deployment on every terminal candidate: the devices drain in order
	// with DrainStaggerNs between them (0 gets 20ms).
	Drain          []topo.DeviceID `json:"drain,omitempty"`
	DrainStaggerNs int64           `json:"drain_stagger_ns,omitempty"`

	// Beam is the search width (0 gets 4); RandomCands is the number of
	// seeded random-batch successors generated per node (0 gets 2).
	Beam        int `json:"beam"`
	RandomCands int `json:"random_cands"`
	// BatchSizes lists the prefix batch splits tried on the bottom-up
	// wave (nil gets [1]).
	BatchSizes []int `json:"batch_sizes,omitempty"`
	// MinNextHops lists MinNextHop percentage overrides to search; they
	// only generate candidates when the intent carries a
	// BgpNativeMinNextHop statement.
	MinNextHops []int `json:"min_next_hops,omitempty"`
	// SearchBare adds the unprotected-wave candidate family.
	SearchBare bool `json:"search_bare,omitempty"`

	// SettlePerDevice settles after every device rather than every wave
	// (the realistic cadence; default true via setDefaults).
	SettlePerDevice bool `json:"settle_per_device"`
	// SampleEvery thins the per-event transient sampling (0 gets 1).
	SampleEvery int `json:"sample_every"`

	// Workers sizes the candidate-evaluation pool (0 gets the fabric
	// fleet default, i.e. CENTRALIUM_PARALLEL). Worker count never
	// changes results, only wall-clock.
	Workers int `json:"workers"`

	// settleDefaulted records that setDefaults chose SettlePerDevice.
	settleDefaulted bool
}

func (p *Params) setDefaults() {
	if p.Beam <= 0 {
		p.Beam = 4
	}
	// Negative RandomCands means "none" and must stay negative: the
	// normalized form round-trips through checkpoints and gets
	// re-normalized on resume, so every default here must be a fixed
	// point (0 -> 2 -> 2, -1 -> -1).
	if p.RandomCands == 0 {
		p.RandomCands = 2
	}
	if len(p.BatchSizes) == 0 {
		p.BatchSizes = []int{1}
	}
	if p.SampleEvery <= 0 {
		p.SampleEvery = 1
	}
	if p.BlackholeEps <= 0 {
		p.BlackholeEps = 0.001
	}
	if p.FairShare <= 0 && len(p.Watch) > 0 {
		p.FairShare = 1 / float64(len(p.Watch))
	}
	if p.Workers <= 0 {
		p.Workers = fabric.DefaultWorkers()
	}
	if !p.SettlePerDevice && !p.settleDefaulted {
		p.SettlePerDevice = true
		p.settleDefaulted = true
	}
}

// Candidate is one fully evaluated schedule.
type Candidate struct {
	Schedule Schedule
	Score    Score
}

// Stats counts the search's work.
type Stats struct {
	StepsEvaluated int `json:"steps_evaluated"`
	MemoHits       int `json:"memo_hits"`
	Completed      int `json:"completed"`
	Levels         int `json:"levels"`
}

// Result is a finished planning run.
type Result struct {
	// Winner is the chosen schedule. It never loses to the §5.3.2
	// bottom-up baseline on the safety comparator: after the search, the
	// baseline is scored through the same machinery and reclaims the win
	// if the searched schedule black-holes longer, funnels harder, or
	// regresses convergence time by more than 10% (the dominance guard).
	Winner Schedule
	Score  Score

	// Baseline is the §5.3.2 bottom-up schedule and its score.
	Baseline      Schedule
	BaselineScore Score

	// FromBaseline reports that the guard replaced the searched winner
	// with the baseline.
	FromBaseline bool

	Stats Stats
}

// node is one beam entry: a schedule prefix, its accumulated transient
// score, and the fabric state it reaches (encoded snapshot = fingerprint).
type node struct {
	sched Schedule
	score Score
	state []byte
	fp    string
}

// Search is a resumable beam search. Step() advances one level;
// Checkpoint() serializes the whole search between levels.
type Search struct {
	p    Params
	ev   *evaluator
	base []byte

	beam      []node
	completed []Candidate
	level     int
	done      bool
	stats     Stats

	mu   sync.Mutex
	memo map[string]memoEntry
}

// memoEntry caches one evaluated expansion keyed by
// (parent-state-fingerprint, step text): identical intermediate states
// share scores no matter which schedule prefix reached them.
type memoEntry struct {
	out   StepOutcome
	child []byte
	fp    string
}

// NewSearch builds a search over the deployment schedules of p.Intent on
// the captured fabric. The snapshot must hold a quiescent (converged)
// network — which Capture already enforces.
func NewSearch(base *snapshot.Snapshot, p Params) (*Search, error) {
	state, err := stateBytes(base)
	if err != nil {
		return nil, err
	}
	return newSearchFromState(state, p)
}

// newSearchFromState is the raw-bytes constructor shared with checkpoint
// resume.
func newSearchFromState(state []byte, p Params) (*Search, error) {
	p.setDefaults()
	if len(p.Intent) == 0 {
		return nil, fmt.Errorf("planner: empty intent")
	}
	if err := p.Intent.Validate(); err != nil {
		return nil, err
	}
	if len(p.Watch) == 0 {
		return nil, fmt.Errorf("planner: no watched devices (the funneling metric needs a hot layer)")
	}
	snap, err := snapshot.Decode(state)
	if err != nil {
		return nil, fmt.Errorf("planner: base snapshot: %w", err)
	}
	n, err := snap.Restore()
	if err != nil {
		return nil, fmt.Errorf("planner: base snapshot: %w", err)
	}
	for _, d := range sortedDevices(p.Intent) {
		if n.Topo.Device(d) == nil {
			return nil, fmt.Errorf("planner: intent device %s not in the snapshot's topology", d)
		}
	}
	s := &Search{
		p:    p,
		base: state,
		memo: make(map[string]memoEntry),
	}
	s.ev = &evaluator{p: &s.p, tp: n.Topo}
	s.beam = []node{{state: state, fp: fingerprint(state)}}
	return s, nil
}

// stateBytes encodes a snapshot without its free-form metadata, so the
// fingerprint is a pure state identity. EncodeCanonical never touches the
// snapshot (an earlier version swapped Meta in place, which raced when
// several searches shared one cached base snapshot — the centraliumd
// serving path does exactly that).
func stateBytes(base *snapshot.Snapshot) ([]byte, error) {
	return base.EncodeCanonical()
}

// Level returns the number of completed beam levels.
func (s *Search) Level() int { return s.level }

// IsDone reports whether the search is exhausted (Result may be called).
func (s *Search) IsDone() bool { return s.done }

// SearchStats returns a copy of the search's work counters.
func (s *Search) SearchStats() Stats { return s.stats }

// Plan runs a full search and returns the winner.
func Plan(base *snapshot.Snapshot, p Params) (*Result, error) {
	s, err := NewSearch(base, p)
	if err != nil {
		return nil, err
	}
	for {
		done, err := s.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return s.Result()
		}
	}
}

// remaining returns the intent devices a schedule has not yet deployed,
// sorted.
func (s *Search) remaining(sched Schedule) []topo.DeviceID {
	deployed := make(map[topo.DeviceID]bool)
	for _, d := range sched.Devices() {
		deployed[d] = true
	}
	var out []topo.DeviceID
	for _, d := range sortedDevices(s.p.Intent) {
		if !deployed[d] {
			out = append(out, d)
		}
	}
	return out
}

// wavesByDistance groups devices by |altitude − origin|, returning the
// groups ordered farthest-first (the §5.3.2 deployment direction), each
// group sorted.
func (s *Search) wavesByDistance(devs []topo.DeviceID) [][]topo.DeviceID {
	byDist := make(map[int][]topo.DeviceID)
	var dists []int
	for _, d := range devs {
		dev := s.ev.tp.Device(d)
		if dev == nil {
			continue
		}
		dist := dev.Layer.Altitude() - s.p.OriginAltitude
		if dist < 0 {
			dist = -dist
		}
		if _, ok := byDist[dist]; !ok {
			dists = append(dists, dist)
		}
		byDist[dist] = append(byDist[dist], d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dists)))
	out := make([][]topo.DeviceID, 0, len(dists))
	for _, dist := range dists {
		wave := byDist[dist]
		sort.Slice(wave, func(i, j int) bool { return wave[i] < wave[j] })
		out = append(out, wave)
	}
	return out
}

// intentHasMinNextHop reports whether any intent statement carries a
// native MinNextHop threshold (the precondition for mnh candidates).
func (s *Search) intentHasMinNextHop() bool {
	for _, d := range sortedDevices(s.p.Intent) {
		for _, st := range s.p.Intent[d].PathSelection {
			if st.BgpNativeMinNextHop.Percent > 0 {
				return true
			}
		}
	}
	return false
}

// candidates generates the successor steps of one beam node, in a
// deterministic order that depends only on (seed, level, node index,
// node schedule) — never on worker count or map iteration.
func (s *Search) candidates(nodeIdx int, nd node) []Step {
	rem := s.remaining(nd.sched)
	if len(rem) == 0 {
		return nil
	}
	waves := s.wavesByDistance(rem)
	bottomUp := waves[0]
	topDown := waves[len(waves)-1]

	var cands []Step
	add := func(st Step) {
		key := st.String()
		for _, c := range cands {
			if c.String() == key {
				return
			}
		}
		cands = append(cands, st)
	}

	// §5.3.2 family: the farthest remaining layer as one wave — the
	// baseline's own next move is always in the candidate set.
	add(Step{Devices: bottomUp})
	// The uncoordinated direction, so the search can prove it loses.
	add(Step{Devices: topDown})
	// Batch splits of the bottom-up wave.
	for _, b := range s.p.BatchSizes {
		if b > 0 && b < len(bottomUp) {
			add(Step{Devices: append([]topo.DeviceID(nil), bottomUp[:b]...)})
		}
	}
	// Protection-threshold overrides.
	if s.intentHasMinNextHop() {
		for _, mnh := range s.p.MinNextHops {
			if mnh > 0 && mnh <= 100 {
				add(Step{Devices: bottomUp, MinNextHop: mnh})
			}
		}
	}
	// The unprotected arm.
	if s.p.SearchBare {
		add(Step{Devices: bottomUp, Bare: true})
	}
	// Seeded random batches: a per-node stream derived from (seed,
	// level, node index) — reproducible, worker-independent.
	rng := newRand(s.p.Seed, int64(s.level), int64(nodeIdx))
	for i := 0; i < s.p.RandomCands; i++ {
		size := 1 + rng.intn(len(rem))
		pick := append([]topo.DeviceID(nil), rem...)
		for j := len(pick) - 1; j > 0; j-- {
			k := rng.intn(j + 1)
			pick[j], pick[k] = pick[k], pick[j]
		}
		add(Step{Devices: pick[:size]})
	}
	return cands
}

// expansion is one (node, candidate step) evaluation task.
type expansion struct {
	nodeIdx int
	step    Step
	key     string // parentFP | stepKey
}

// Step advances the search one beam level: expand every node, evaluate
// unique expansions across the worker pool, finalize terminal candidates,
// and select the next beam. Returns done=true once the beam is empty.
func (s *Search) Step() (bool, error) {
	if s.done {
		return true, nil
	}
	if len(s.beam) == 0 {
		s.done = true
		return true, nil
	}

	// Generate and key expansions serially (cheap, deterministic).
	var tasks []expansion
	seen := make(map[string]bool)
	var uniq []expansion
	for i, nd := range s.beam {
		for _, st := range s.candidates(i, nd) {
			key := nd.fp + "|" + st.String()
			tasks = append(tasks, expansion{nodeIdx: i, step: st, key: key})
			s.mu.Lock()
			_, inMemo := s.memo[key]
			s.mu.Unlock()
			if inMemo || seen[key] {
				s.stats.MemoHits++
				continue
			}
			seen[key] = true
			uniq = append(uniq, expansion{nodeIdx: i, step: st, key: key})
		}
	}

	// Evaluate unique expansions on the pool; results land in the memo.
	if err := s.runPool(len(uniq), func(i int) error {
		ex := uniq[i]
		out, child, err := s.ev.evalStep(s.beam[ex.nodeIdx].state, ex.step)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.memo[ex.key] = memoEntry{out: out, child: child, fp: fingerprint(child)}
		s.stats.StepsEvaluated++
		s.mu.Unlock()
		return nil
	}); err != nil {
		return false, err
	}

	// Assemble children in task order (deterministic).
	var children []node
	type terminal struct {
		sched Schedule
		score Score
		fp    string
		state []byte
	}
	var terminals []terminal
	for _, ex := range tasks {
		s.mu.Lock()
		me := s.memo[ex.key]
		s.mu.Unlock()
		parent := s.beam[ex.nodeIdx]
		childSched := parent.sched.Clone()
		childSched.Steps = append(childSched.Steps, ex.step.Clone())
		childScore := parent.score.add(me.out, true)
		if len(s.remaining(childSched)) == 0 {
			terminals = append(terminals, terminal{sched: childSched, score: childScore, fp: me.fp, state: me.child})
		} else {
			children = append(children, node{sched: childSched, score: childScore, state: me.child, fp: me.fp})
		}
	}

	// Terminal candidates run the migration body (memoized per final
	// state fingerprint) before scoring.
	migKeys := make(map[string]bool)
	var migUniq []terminal
	for _, t := range terminals {
		key := t.fp + "|migration"
		s.mu.Lock()
		_, inMemo := s.memo[key]
		s.mu.Unlock()
		if inMemo || migKeys[key] {
			s.stats.MemoHits++
			continue
		}
		migKeys[key] = true
		migUniq = append(migUniq, t)
	}
	if err := s.runPool(len(migUniq), func(i int) error {
		t := migUniq[i]
		out, err := s.ev.evalMigration(t.state)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.memo[t.fp+"|migration"] = memoEntry{out: out}
		s.stats.StepsEvaluated++
		s.mu.Unlock()
		return nil
	}); err != nil {
		return false, err
	}
	for _, t := range terminals {
		s.mu.Lock()
		me := s.memo[t.fp+"|migration"]
		s.mu.Unlock()
		s.completed = append(s.completed, Candidate{Schedule: t.sched, Score: t.score.add(me.out, false)})
	}

	// Select the next beam: best-first, fingerprint-deduplicated
	// (identical states keep only the cheapest path that reached them).
	sort.SliceStable(children, func(i, j int) bool {
		if c := children[i].score.Cmp(children[j].score); c != 0 {
			return c < 0
		}
		return children[i].sched.String() < children[j].sched.String()
	})
	var next []node
	byFP := make(map[string]bool)
	for _, c := range children {
		if byFP[c.fp] {
			continue
		}
		byFP[c.fp] = true
		next = append(next, c)
		if len(next) == s.p.Beam {
			break
		}
	}
	s.beam = next
	s.level++
	s.stats.Levels = s.level
	if len(s.beam) == 0 {
		s.done = true
	}
	return s.done, nil
}

// runPool executes n tasks across the configured worker pool. The first
// error (by task index) wins; results must be stored keyed by content
// (the memo), never by completion order.
func (s *Search) runPool(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := s.p.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// BaselineSchedule is the §5.3.2 bottom-up layer sequence for the
// params' intent: one wave per altitude-distance group, farthest first.
func (s *Search) BaselineSchedule() Schedule {
	return FromWaves(s.wavesByDistance(sortedDevices(s.p.Intent)))
}

// scoreScheduleLocked evaluates a full schedule through the shared memo,
// serially. Used for the baseline, planctl score/explain, and Approver.
func (s *Search) scoreScheduleLocked(sched Schedule) (*Report, error) {
	rep := &Report{Schedule: sched}
	state := s.base
	fp := fingerprint(state)
	var score Score
	for _, st := range sched.Steps {
		key := fp + "|" + st.String()
		s.mu.Lock()
		me, ok := s.memo[key]
		s.mu.Unlock()
		if !ok {
			out, child, err := s.ev.evalStep(state, st)
			if err != nil {
				return nil, err
			}
			me = memoEntry{out: out, child: child, fp: fingerprint(child)}
			s.mu.Lock()
			s.memo[key] = me
			s.stats.StepsEvaluated++
			s.mu.Unlock()
		} else {
			s.mu.Lock()
			s.stats.MemoHits++
			s.mu.Unlock()
		}
		rep.Phases = append(rep.Phases, me.out)
		score = score.add(me.out, true)
		state, fp = me.child, me.fp
	}
	if rem := s.remaining(sched); len(rem) > 0 {
		return nil, fmt.Errorf("planner: schedule leaves %d intent devices undeployed (first: %s)", len(rem), rem[0])
	}
	key := fp + "|migration"
	s.mu.Lock()
	me, ok := s.memo[key]
	s.mu.Unlock()
	if !ok {
		out, err := s.ev.evalMigration(state)
		if err != nil {
			return nil, err
		}
		me = memoEntry{out: out}
		s.mu.Lock()
		s.memo[key] = me
		s.stats.StepsEvaluated++
		s.mu.Unlock()
	}
	rep.Phases = append(rep.Phases, me.out)
	rep.Total = score.add(me.out, false)
	return rep, nil
}

// ScoreSchedule evaluates one explicit schedule end to end on the base
// snapshot and returns the per-phase breakdown.
func ScoreSchedule(base *snapshot.Snapshot, p Params, sched Schedule) (*Report, error) {
	s, err := NewSearch(base, p)
	if err != nil {
		return nil, err
	}
	return s.scoreScheduleLocked(sched)
}

// Result finalizes the search: the best completed candidate wins unless
// the §5.3.2 baseline dominates it under the guard (longer black-hole
// window, harder funneling, or >10% convergence regression all hand the
// win back to the baseline).
func (s *Search) Result() (*Result, error) {
	if !s.done {
		return nil, fmt.Errorf("planner: search not finished (call Step until done)")
	}
	baseRep, err := s.scoreScheduleLocked(s.BaselineSchedule())
	if err != nil {
		return nil, fmt.Errorf("planner: baseline: %w", err)
	}
	res := &Result{
		Baseline:      baseRep.Schedule,
		BaselineScore: baseRep.Total,
	}
	s.stats.Completed = len(s.completed)
	if len(s.completed) == 0 {
		res.Winner, res.Score, res.FromBaseline = baseRep.Schedule, baseRep.Total, true
		res.Stats = s.stats
		return res, nil
	}
	best := s.completed[0]
	for _, c := range s.completed[1:] {
		if cmp := c.Score.Cmp(best.Score); cmp < 0 ||
			(cmp == 0 && c.Schedule.String() < best.Schedule.String()) {
			best = c
		}
	}
	if dominated(best.Score, baseRep.Total) {
		res.Winner, res.Score, res.FromBaseline = baseRep.Schedule, baseRep.Total, true
	} else {
		res.Winner, res.Score = best.Schedule, best.Score
	}
	res.Stats = s.stats
	return res, nil
}

// dominated reports that the searched score loses to the baseline on the
// acceptance criteria: more black-hole time, a higher funneling peak, or
// a convergence-time regression beyond 10%.
func dominated(got, baseline Score) bool {
	if got.BlackholeNs > baseline.BlackholeNs {
		return true
	}
	if got.PeakShare > baseline.PeakShare {
		return true
	}
	return 10*got.ConvergeNs > 11*baseline.ConvergeNs
}

// Exhaustive scores every per-device deployment order (batch size 1,
// protection on) and returns the best schedule plus the number of
// schedules scored — the brute-force reference the beam search is
// benchmarked against. Factorial in the intent size; keep it for small
// intents.
func Exhaustive(base *snapshot.Snapshot, p Params) (*Result, int, error) {
	s, err := NewSearch(base, p)
	if err != nil {
		return nil, 0, err
	}
	return exhaustiveOn(s)
}

// exhaustiveOn runs the brute-force sweep on an existing search (sharing
// its memo).
func exhaustiveOn(s *Search) (*Result, int, error) {
	devs := sortedDevices(s.p.Intent)
	var best *Candidate
	count := 0
	var recurse func(prefix []topo.DeviceID, rest []topo.DeviceID) error
	recurse = func(prefix, rest []topo.DeviceID) error {
		if len(rest) == 0 {
			sched := Schedule{}
			for _, d := range prefix {
				sched.Steps = append(sched.Steps, Step{Devices: []topo.DeviceID{d}})
			}
			rep, err := s.scoreScheduleLocked(sched)
			if err != nil {
				return err
			}
			count++
			c := Candidate{Schedule: sched, Score: rep.Total}
			if best == nil || c.Score.Cmp(best.Score) < 0 ||
				(c.Score.Cmp(best.Score) == 0 && c.Schedule.String() < best.Schedule.String()) {
				best = &c
			}
			return nil
		}
		for i := range rest {
			next := append(append([]topo.DeviceID(nil), rest[:i]...), rest[i+1:]...)
			if err := recurse(append(prefix, rest[i]), next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := recurse(nil, devs); err != nil {
		return nil, count, err
	}
	baseRep, err := s.scoreScheduleLocked(s.BaselineSchedule())
	if err != nil {
		return nil, count, err
	}
	return &Result{
		Winner: best.Schedule, Score: best.Score,
		Baseline: baseRep.Schedule, BaselineScore: baseRep.Total,
		Stats: s.stats,
	}, count, nil
}

// Approver returns a controller Rollout.Approval hook bound to a planned
// result: a proposed wave schedule is scored on a fork of the same base
// state and rejected when the planner's reference schedule beats it on
// the acceptance criteria. The reference is the searched winner reduced
// to its wave-expressible form (a Rollout carries only waves, not the
// planner's per-step protection options), guard-checked against the
// §5.3.2 baseline — so a proposal is only ever rejected in favor of a
// schedule the controller could actually run. This is what lets
// qualify.Gate demand a planner-approved schedule in front of a live
// push.
func Approver(base *snapshot.Snapshot, p Params) func(waves [][]topo.DeviceID) error {
	var once sync.Once
	var s *Search
	var refSched Schedule
	var refScore Score
	var initErr error
	return func(waves [][]topo.DeviceID) error {
		once.Do(func() {
			s, initErr = NewSearch(base, p)
			if initErr != nil {
				return
			}
			for {
				var done bool
				if done, initErr = s.Step(); initErr != nil || done {
					break
				}
			}
			if initErr != nil {
				return
			}
			var res *Result
			if res, initErr = s.Result(); initErr != nil {
				return
			}
			refSched = FromWaves(res.Winner.Waves())
			var rep *Report
			if rep, initErr = s.scoreScheduleLocked(refSched); initErr != nil {
				return
			}
			refScore = rep.Total
			if dominated(refScore, res.BaselineScore) {
				refSched, refScore = res.Baseline, res.BaselineScore
			}
		})
		if initErr != nil {
			return fmt.Errorf("planner: approver: %w", initErr)
		}
		proposed := FromWaves(waves)
		rep, err := s.scoreScheduleLocked(proposed)
		if err != nil {
			return fmt.Errorf("planner: approver: score proposed schedule: %w", err)
		}
		if dominated(rep.Total, refScore) {
			return fmt.Errorf("planner: schedule %q not approved (%s); planner prefers %q (%s)",
				proposed, rep.Total, refSched, refScore)
		}
		return nil
	}
}
