package planner

// Seeded randomness for candidate generation. The planner never touches
// the global math/rand source (the determinism lint forbids it); every
// random draw comes from a stream derived purely from (seed, level, node
// index), so candidate sets are identical at any worker count.

// mix folds values into a seed with the SplitMix64 finalizer.
func mix(vs ...int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= uint64(v)
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// rand64 is a SplitMix64 stream.
type rand64 uint64

// newRand derives an independent stream for one (seed, level, node).
func newRand(vs ...int64) *rand64 {
	r := rand64(mix(vs...))
	return &r
}

func (r *rand64) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform draw in [0, n); n must be positive.
func (r *rand64) intn(n int) int {
	return int(r.next() % uint64(n))
}
