package planner

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"centralium/internal/fabric"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the planner golden schedule files")

// goldenPlan runs the pinned fig10 search the golden file captures.
func goldenPlan(t *testing.T, workers int) *Result {
	t.Helper()
	snap, p, err := ScenarioSetup("fig10", 1)
	if err != nil {
		t.Fatal(err)
	}
	p.SearchBare = true
	p.BatchSizes = []int{1, 2}
	p.MinNextHops = []int{50}
	p.Workers = workers
	res, err := Plan(snap, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenSchedule pins the winning schedule byte-for-byte: the same
// seed must produce this exact schedule at any worker width. The golden
// file is the determinism contract's artifact — a change here means the
// search semantics changed, which must be deliberate (-update-golden).
func TestGoldenSchedule(t *testing.T) {
	res := goldenPlan(t, 1)
	got := res.Winner.String() + "\n"

	path := filepath.Join("testdata", "fig10_seed1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("winning schedule drifted from golden:\n got: %q\nwant: %q", got, string(want))
	}
}

// TestWorkerWidthIndependence is the determinism contract across the
// evaluation pool: serial (1 worker) and parallel (4 workers, the CI
// CENTRALIUM_PARALLEL width) searches must produce byte-identical
// winners, scores, and search statistics.
func TestWorkerWidthIndependence(t *testing.T) {
	serial := goldenPlan(t, 1)

	// Exercise the fleet-default path too: Workers=0 picks up
	// fabric.DefaultWorkers, which CI pins via CENTRALIUM_PARALLEL=4.
	prev := fabric.SetDefaultWorkers(4)
	defer fabric.SetDefaultWorkers(prev)
	parallel := goldenPlan(t, 0)

	if serial.Winner.String() != parallel.Winner.String() {
		t.Fatalf("worker width changed the winner:\n  1: %s\n  4: %s", serial.Winner, parallel.Winner)
	}
	if serial.Score != parallel.Score {
		t.Fatalf("worker width changed the score:\n  1: %s\n  4: %s", serial.Score, parallel.Score)
	}
	if serial.Stats != parallel.Stats {
		t.Fatalf("worker width changed the search stats:\n  1: %+v\n  4: %+v", serial.Stats, parallel.Stats)
	}
	if serial.Baseline.String() != parallel.Baseline.String() || serial.BaselineScore != parallel.BaselineScore {
		t.Fatal("worker width changed the baseline evaluation")
	}
}

// TestCheckpointResumeIdentity freezes the search mid-flight at every
// level boundary, resumes from the serialized checkpoint, and requires
// the byte-identical winner the uninterrupted run produces.
func TestCheckpointResumeIdentity(t *testing.T) {
	full := goldenPlan(t, 2)

	snap, p, err := ScenarioSetup("fig10", 1)
	if err != nil {
		t.Fatal(err)
	}
	p.SearchBare = true
	p.BatchSizes = []int{1, 2}
	p.MinNextHops = []int{50}
	p.Workers = 2

	for interrupt := 1; ; interrupt++ {
		s, err := NewSearch(snap, p)
		if err != nil {
			t.Fatal(err)
		}
		done := false
		for i := 0; i < interrupt && !done; i++ {
			if done, err = s.Step(); err != nil {
				t.Fatal(err)
			}
		}
		data, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := ResumeSearch(data)
		if err != nil {
			t.Fatal(err)
		}
		for {
			d, err := resumed.Step()
			if err != nil {
				t.Fatal(err)
			}
			if d {
				break
			}
		}
		res, err := resumed.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner.String() != full.Winner.String() {
			t.Fatalf("interrupt after level %d changed the winner:\n resumed: %s\n    full: %s",
				interrupt, res.Winner, full.Winner)
		}
		if res.Score != full.Score {
			t.Fatalf("interrupt after level %d changed the score: %s vs %s", interrupt, res.Score, full.Score)
		}
		if done {
			return // interrupted past the final level; every boundary covered
		}
	}
}
