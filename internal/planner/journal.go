package planner

// Journaled search progress. StepJournaled is Step plus a durable
// checkpoint of the between-levels state through a caller-supplied
// Journal — the interface internal/store's WAL-backed journal satisfies
// — so a search interrupted anywhere (deadline, crash, kill -9) resumes
// from its last completed level instead of from scratch, and the resumed
// run converges on the byte-identical winner (the Checkpoint/ResumeSearch
// determinism, held per level instead of per explicit save).

import "fmt"

// Journal persists one search's between-level checkpoints. The latest
// saved checkpoint wins on recovery. Implementations must not retain
// the checkpoint slice past the call.
type Journal interface {
	// SaveProgress records the state after completing the given level.
	// The checkpoint bytes are self-contained (ResumeSearch input); the
	// level is advisory, for logging and metrics.
	SaveProgress(level int, checkpoint []byte) error
}

// JournalFunc adapts a function to the Journal interface.
type JournalFunc func(level int, checkpoint []byte) error

// SaveProgress implements Journal.
func (f JournalFunc) SaveProgress(level int, checkpoint []byte) error {
	return f(level, checkpoint)
}

// StepJournaled advances the search one level and journals the
// resulting state. The checkpoint is taken between levels — the only
// point Checkpoint is valid — so a journal written by StepJournaled is
// always resumable.
func (s *Search) StepJournaled(j Journal) (done bool, err error) {
	done, err = s.Step()
	if err != nil {
		return false, err
	}
	cp, err := s.Checkpoint()
	if err != nil {
		return false, fmt.Errorf("planner: journal checkpoint: %w", err)
	}
	if err := j.SaveProgress(s.level, cp); err != nil {
		return false, fmt.Errorf("planner: journal save: %w", err)
	}
	return done, nil
}

// RunJournaled drives a search to completion under a journal and
// returns its result. Resume an interrupted run by rebuilding the
// search with ResumeSearch on the journal's latest checkpoint and
// calling RunJournaled again.
func RunJournaled(s *Search, j Journal) (*Result, error) {
	for {
		if s.IsDone() {
			return s.Result()
		}
		done, err := s.StepJournaled(j)
		if err != nil {
			return nil, err
		}
		if done {
			return s.Result()
		}
	}
}
