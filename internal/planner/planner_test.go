package planner

import (
	"strings"
	"testing"

	"centralium/internal/topo"
)

func fig10Plan(t *testing.T, seed int64, workers int) *Result {
	t.Helper()
	snap, p, err := ScenarioSetup("fig10", seed)
	if err != nil {
		t.Fatal(err)
	}
	p.SearchBare = true
	p.BatchSizes = []int{1, 2}
	p.Workers = workers
	res, err := Plan(snap, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParseRoundTrip pins the canonical schedule text codec.
func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"fa.0",
		"fa.0,fa.1 > ssw.pl0.0",
		"fsw.pod0.0,fsw.pod0.1!bare > ssw.pl0.0!mnh=50 > fa.0,fa.1",
	}
	for _, text := range cases {
		sched, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if got := sched.String(); got != text {
			t.Fatalf("round trip %q -> %q", text, got)
		}
	}
	for _, bad := range []string{" > ", "a,,b", "fa.0!mnh=0", "fa.0!mnh=200", "fa.0!frob"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// TestPlanNeverLosesToBaseline is the acceptance criterion across the
// seed sweep: the winner matches or beats the §5.3.2 bottom-up baseline
// on black-hole window and peak funneling, and never regresses
// convergence time by more than 10%. The dominance guard makes this hold
// by construction; this test proves the guard is wired in.
func TestPlanNeverLosesToBaseline(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		res := fig10Plan(t, seed, 2)
		if res.Score.BlackholeNs > res.BaselineScore.BlackholeNs {
			t.Errorf("seed %d: winner blackhole %d > baseline %d", seed, res.Score.BlackholeNs, res.BaselineScore.BlackholeNs)
		}
		if res.Score.PeakShare > res.BaselineScore.PeakShare {
			t.Errorf("seed %d: winner peak share %.3f > baseline %.3f", seed, res.Score.PeakShare, res.BaselineScore.PeakShare)
		}
		if 10*res.Score.ConvergeNs > 11*res.BaselineScore.ConvergeNs {
			t.Errorf("seed %d: winner converge %d regresses baseline %d by >10%%", seed, res.Score.ConvergeNs, res.BaselineScore.ConvergeNs)
		}
		if res.Stats.StepsEvaluated == 0 || res.Stats.Completed == 0 {
			t.Errorf("seed %d: empty search (%+v)", seed, res.Stats)
		}
		if len(res.Winner.Devices()) != 6 {
			t.Errorf("seed %d: winner deploys %d devices, want 6", seed, len(res.Winner.Devices()))
		}
	}
}

// TestSearchVersusExhaustive compares the beam search against brute
// force on a small intent: the beam winner must score no worse than the
// baseline, and the exhaustive optimum must score no worse than the beam
// winner (beam search cannot beat the true optimum over the same step
// shape).
func TestSearchVersusExhaustive(t *testing.T) {
	snap, p, err := ScenarioSetup("fig10", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict the intent to the SSW+FA column: 4! = 24 permutations.
	for d := range p.Intent {
		if !strings.HasPrefix(string(d), "ssw.") && !strings.HasPrefix(string(d), "fa.") {
			delete(p.Intent, d)
		}
	}
	ex, count, err := Exhaustive(snap, p)
	if err != nil {
		t.Fatal(err)
	}
	if count != 24 {
		t.Fatalf("exhaustive scored %d schedules, want 24", count)
	}
	beam, err := Plan(snap, p)
	if err != nil {
		t.Fatal(err)
	}
	// The beam searches a wider step shape (batched waves) than the
	// exhaustive batch-1 sweep, so compare on the safety triple: the beam
	// winner must be at least as safe and as fast as the true batch-1
	// optimum here.
	if cmpSafety(beam.Score, ex.Score) > 0 {
		t.Fatalf("beam winner (%s) scored worse than the exhaustive optimum (%s)", beam.Score, ex.Score)
	}
	if beam.Score.Cmp(beam.BaselineScore) > 0 {
		t.Fatalf("beam winner (%s) scored worse than the baseline (%s) — guard missing", beam.Score, beam.BaselineScore)
	}
}

// cmpSafety compares only the safety-critical prefix of the score:
// black-hole window, peak funneling, convergence time.
func cmpSafety(a, b Score) int {
	if c := cmpI64(a.BlackholeNs, b.BlackholeNs); c != 0 {
		return c
	}
	if c := cmpF64(a.PeakShare, b.PeakShare); c != 0 {
		return c
	}
	return cmpI64(a.ConvergeNs, b.ConvergeNs)
}

// TestScoreScheduleReport pins the explain surface: per-phase outcomes
// for every step plus the terminal migration phase, with a consistent
// total.
func TestScoreScheduleReport(t *testing.T) {
	snap, p, err := ScenarioSetup("fig10", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearch(snap, p)
	if err != nil {
		t.Fatal(err)
	}
	sched := s.BaselineSchedule()
	rep, err := ScoreSchedule(snap, p, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != len(sched.Steps)+1 {
		t.Fatalf("phases = %d, want %d steps + migration", len(rep.Phases), len(sched.Steps))
	}
	if rep.Total.Steps != len(sched.Steps) {
		t.Fatalf("total steps = %d, want %d", rep.Total.Steps, len(sched.Steps))
	}
	var converge int64
	for _, ph := range rep.Phases {
		converge += ph.ConvergeNs
	}
	if converge != rep.Total.ConvergeNs {
		t.Fatalf("phase converge sum %d != total %d", converge, rep.Total.ConvergeNs)
	}
	if !strings.Contains(rep.String(), "total:") {
		t.Fatalf("report rendering lacks a total:\n%s", rep)
	}
	// A schedule that does not cover the intent is rejected.
	if _, err := ScoreSchedule(snap, p, Schedule{Steps: sched.Steps[:1]}); err == nil {
		t.Fatal("partial schedule accepted")
	}
}

// TestApprover pins the gate hook: the planner's own winner passes, and
// a schedule the winner dominates is rejected.
func TestApprover(t *testing.T) {
	snap, p, err := ScenarioSetup("fig10", 1)
	if err != nil {
		t.Fatal(err)
	}
	p.SearchBare = true
	p.BatchSizes = []int{1, 2}
	res, err := Plan(snap, p)
	if err != nil {
		t.Fatal(err)
	}
	approve := Approver(snap, p)
	if err := approve(res.Winner.Waves()); err != nil {
		t.Fatalf("planner's own winner rejected: %v", err)
	}
	// The approver's reference is the winner reduced to plain waves (a
	// Rollout cannot carry the planner's per-step options), baseline-
	// guarded — recompute it here.
	refRep, err := ScoreSchedule(snap, p, FromWaves(res.Winner.Waves()))
	if err != nil {
		t.Fatal(err)
	}
	ref := refRep.Total
	if dominated(ref, res.BaselineScore) {
		ref = res.BaselineScore
	}
	// The top-down wave order — the baseline reversed, FA layer first —
	// recreates the Figure 10 hazard; the reference dominates it on peak
	// share.
	s, err := NewSearch(snap, p)
	if err != nil {
		t.Fatal(err)
	}
	baseWaves := s.BaselineSchedule().Waves()
	var topDown [][]topo.DeviceID
	for i := len(baseWaves) - 1; i >= 0; i-- {
		topDown = append(topDown, baseWaves[i])
	}
	rep, err := ScoreSchedule(snap, p, FromWaves(topDown))
	if err != nil {
		t.Fatal(err)
	}
	if !dominated(rep.Total, ref) {
		t.Fatalf("top-down hazard order (%s) not dominated by the reference (%s) — pick a different fixture", rep.Total, ref)
	}
	if err := approve(topDown); err == nil {
		t.Fatal("dominated top-down schedule approved")
	}
}

// TestScenarioSetups builds every named setup and validates it against
// the search constructor.
func TestScenarioSetups(t *testing.T) {
	for _, name := range ScenarioNames() {
		snap, p, err := ScenarioSetup(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p.Intent) == 0 {
			t.Fatalf("%s: empty intent", name)
		}
		s, err := NewSearch(snap, p)
		if err != nil {
			t.Fatalf("%s: NewSearch: %v", name, err)
		}
		base := s.BaselineSchedule()
		if got, want := len(base.Devices()), len(p.Intent); got != want {
			t.Fatalf("%s: baseline deploys %d devices, intent has %d", name, got, want)
		}
	}
	if _, _, err := ScenarioSetup("nope", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestRigScenarioPlans runs a full (narrow) search on the decommission
// rig, whose terminal drain body is where protection pays off: the
// winner must match or beat the baseline on the safety comparators.
func TestRigScenarioPlans(t *testing.T) {
	snap, p, err := ScenarioSetup("decommission", 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Beam = 2
	p.RandomCands = 1
	res, err := Plan(snap, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score.BlackholeNs > res.BaselineScore.BlackholeNs {
		t.Errorf("winner blackhole %d > baseline %d", res.Score.BlackholeNs, res.BaselineScore.BlackholeNs)
	}
	if res.Score.PeakShare > res.BaselineScore.PeakShare {
		t.Errorf("winner peak %.3f > baseline %.3f", res.Score.PeakShare, res.BaselineScore.PeakShare)
	}
}

// TestMemoDedup verifies that identical intermediate states are not
// re-evaluated: the fig10 search must land memo hits (converging
// prefixes exist by construction — the same wave reached via different
// orders).
func TestMemoDedup(t *testing.T) {
	res := fig10Plan(t, 1, 1)
	if res.Stats.MemoHits == 0 {
		t.Fatalf("no memo hits in %+v — fingerprint memoization inert", res.Stats)
	}
}
