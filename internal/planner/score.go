package planner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"centralium/internal/controller"
	"centralium/internal/core"
	"centralium/internal/fabric"
	"centralium/internal/snapshot"
	"centralium/internal/telemetry"
	"centralium/internal/topo"
	"centralium/internal/traffic"
)

// Score is the planner's safety-ordered schedule cost. Fields accumulate
// over the schedule's steps plus the terminal migration phase.
type Score struct {
	// BlackholeNs is the integrated virtual time during which the
	// workload's black-holed fraction exceeded the epsilon — the
	// black-hole window duration.
	BlackholeNs int64 `json:"blackhole_ns"`
	// PeakShare is the worst transient traffic share observed on any
	// watched device (the funneling metric of Figures 2/4/10).
	PeakShare float64 `json:"peak_share"`
	// ConvergeNs is the total virtual time the schedule consumed.
	ConvergeNs int64 `json:"converge_ns"`
	// PeakNHG is the worst next-hop-group occupancy seen in FIB writes.
	PeakNHG int `json:"peak_nhg"`
	// Churn counts routing events (Adj-RIB-In + best-path) on the tap.
	Churn int64 `json:"churn"`
	// Alerts counts pathology-detector alerts fired during evaluation.
	Alerts int `json:"alerts"`
	// Steps is the schedule length.
	Steps int `json:"steps"`
}

// Cmp is the planner's total preorder, safety-first: black-hole window,
// then peak funneling, then convergence time, then NHG pressure, churn,
// and schedule length. Ties are broken by the caller on the canonical
// schedule text, which makes selection fully deterministic.
func (s Score) Cmp(o Score) int {
	switch {
	case s.BlackholeNs != o.BlackholeNs:
		return cmpI64(s.BlackholeNs, o.BlackholeNs)
	case s.PeakShare != o.PeakShare:
		return cmpF64(s.PeakShare, o.PeakShare)
	case s.ConvergeNs != o.ConvergeNs:
		return cmpI64(s.ConvergeNs, o.ConvergeNs)
	case s.PeakNHG != o.PeakNHG:
		return cmpI64(int64(s.PeakNHG), int64(o.PeakNHG))
	case s.Churn != o.Churn:
		return cmpI64(s.Churn, o.Churn)
	default:
		return cmpI64(int64(s.Steps), int64(o.Steps))
	}
}

func cmpI64(a, b int64) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

func cmpF64(a, b float64) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

func (s Score) String() string {
	return fmt.Sprintf("blackhole=%.2fms peak-share=%.3f converge=%.2fms nhg=%d churn=%d alerts=%d steps=%d",
		float64(s.BlackholeNs)/1e6, s.PeakShare, float64(s.ConvergeNs)/1e6, s.PeakNHG, s.Churn, s.Alerts, s.Steps)
}

// add folds one phase outcome into the accumulated score.
func (s Score) add(o StepOutcome, countStep bool) Score {
	s.BlackholeNs += o.BlackholeNs
	if o.PeakShare > s.PeakShare {
		s.PeakShare = o.PeakShare
	}
	s.ConvergeNs += o.ConvergeNs
	if o.PeakNHG > s.PeakNHG {
		s.PeakNHG = o.PeakNHG
	}
	s.Churn += o.Churn
	s.Alerts += o.Alerts
	if countStep {
		s.Steps++
	}
	return s
}

// StepOutcome is the measured transient of one schedule phase (a
// deployment wave, or the terminal migration phase) on a fork.
type StepOutcome struct {
	Label       string  `json:"label"`
	BlackholeNs int64   `json:"blackhole_ns"`
	PeakShare   float64 `json:"peak_share"`
	ConvergeNs  int64   `json:"converge_ns"`
	PeakNHG     int     `json:"peak_nhg"`
	Churn       int64   `json:"churn"`
	Alerts      int     `json:"alerts"`
	Events      int64   `json:"events"`
}

// Report is a full per-phase breakdown of one schedule's evaluation — the
// planctl explain view.
type Report struct {
	Schedule Schedule
	Phases   []StepOutcome
	Total    Score
}

func (r *Report) String() string {
	var b []byte
	b = fmt.Appendf(b, "%-44s %10s %11s %10s %6s %7s %7s\n",
		"phase", "peak-share", "blackhole", "converge", "nhg", "churn", "alerts")
	for _, ph := range r.Phases {
		b = fmt.Appendf(b, "%-44s %10.3f %9.2fms %8.2fms %6d %7d %7d\n",
			truncLabel(ph.Label, 44), ph.PeakShare, float64(ph.BlackholeNs)/1e6,
			float64(ph.ConvergeNs)/1e6, ph.PeakNHG, ph.Churn, ph.Alerts)
	}
	b = fmt.Appendf(b, "total: %s\n", r.Total)
	return string(b)
}

func truncLabel(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// fingerprint hashes an encoded snapshot — the memoization key. Encoding
// is deterministic (equal states produce equal bytes), so the hash is a
// true state identity.
func fingerprint(state []byte) string {
	sum := sha256.Sum256(state)
	return hex.EncodeToString(sum[:])
}

// probe instruments one fork: it taps the fabric into a pathology
// collector, samples the workload on every engine event, and integrates
// the transient metrics the Score is built from. Attaching an event hook
// forces the engine into serial stepping, so per-fork measurement is
// deterministic; the planner's parallelism lives one level up, across
// candidate forks.
type probe struct {
	p         *Params
	net       *fabric.Network
	pr        *traffic.Propagator
	col       *telemetry.Collector
	out       StepOutcome
	startNow  int64
	lastNow   int64
	lastBlack bool
	samples   int64
	baseAlert int
}

func newProbe(n *fabric.Network, p *Params) *probe {
	pb := &probe{p: p, net: n, pr: &traffic.Propagator{Net: n}}
	pb.col = telemetry.NewCollector(telemetry.CollectorOptions{
		Detectors: telemetry.StandardDetectors(),
		OnEvent: func(ev telemetry.Event) {
			switch ev.Kind {
			case telemetry.KindFIBWrite:
				if ev.NHGroups > pb.out.PeakNHG {
					pb.out.PeakNHG = ev.NHGroups
				}
			case telemetry.KindAdjRIBIn, telemetry.KindBestPath:
				pb.out.Churn++
			}
		},
	})
	n.SetTap(pb.col)
	pb.startNow = n.Now()
	pb.lastNow = pb.startNow
	n.OnEvent(func(now int64) { pb.observe(now) })
	return pb
}

// observe is the per-event sampler: propagate the workload, track the
// watched devices' peak share, and integrate the black-hole window.
func (pb *probe) observe(now int64) {
	pb.samples++
	if pb.samples%int64(pb.p.SampleEvery) != 0 {
		return
	}
	pb.sampleAt(now)
}

// sampleAt measures the workload at one instant: integrate the window
// since the previous sample under the previous sample's verdict, then
// re-sample.
func (pb *probe) sampleAt(now int64) {
	if pb.lastBlack && now > pb.lastNow {
		pb.out.BlackholeNs += now - pb.lastNow
	}
	res := pb.pr.Run(pb.p.Demands)
	dev, share := res.MaxDeviceShare(pb.p.Watch)
	if share > pb.out.PeakShare {
		pb.out.PeakShare = share
	}
	bh := res.BlackholedFraction()
	pb.lastBlack = bh > pb.p.BlackholeEps
	pb.lastNow = now
	pb.col.Emit(telemetry.Event{
		Kind:       telemetry.KindTrafficSample,
		Time:       now,
		Device:     string(dev),
		Share:      share,
		FairShare:  pb.p.FairShare,
		Blackholed: bh,
	})
}

// finish closes the measurement window and returns the outcome. The
// settled end state is always sampled, even if the phase generated no
// events — a no-op deployment (e.g. a bare wave pushing empty configs)
// must still answer for the state it leaves behind.
func (pb *probe) finish(label string, events int64) StepOutcome {
	now := pb.net.Now()
	pb.sampleAt(now)
	pb.out.Label = label
	pb.out.ConvergeNs = now - pb.startNow
	pb.out.Events = events
	pb.out.Alerts = len(pb.col.Alerts())
	return pb.out
}

// evaluator owns the fork/instrument/execute machinery shared by the beam
// search, the exhaustive baseline, and schedule scoring. The topology is
// imported once and cloned per fork, exactly as snapshot.Fork does.
type evaluator struct {
	p  *Params
	tp *topo.Topology
}

// restore rebuilds a running fork from an encoded state.
func (e *evaluator) restore(state []byte) (*fabric.Network, error) {
	snap, err := snapshot.Decode(state)
	if err != nil {
		return nil, fmt.Errorf("planner: decode state: %w", err)
	}
	return snap.RestoreWith(fabric.RestoreOptions{Topo: e.tp.Clone()})
}

// capture re-encodes a quiescent fork as the next search state.
func (e *evaluator) capture(n *fabric.Network) ([]byte, error) {
	snap, err := snapshot.Capture(n)
	if err != nil {
		return nil, fmt.Errorf("planner: capture: %w", err)
	}
	return snap.Encode()
}

// evalStep forks the parent state, pushes one wave through the real
// rollout path (controller.Execute), and returns the measured transient
// plus the child state.
func (e *evaluator) evalStep(parent []byte, st Step) (StepOutcome, []byte, error) {
	n, err := e.restore(parent)
	if err != nil {
		return StepOutcome{}, nil, err
	}
	pb := newProbe(n, e.p)
	events := int64(0)
	ctl := &controller.Controller{
		Topo:   n.Topo,
		Deploy: func(d topo.DeviceID, cfg *core.Config) error { return n.DeployRPA(d, cfg) },
		Settle: func() { events += n.Converge() },
	}
	err = ctl.Execute(controller.OrchestratedChange{
		Name: "planner step",
		Rollout: controller.Rollout{
			Intent:          stepIntent(e.p.Intent, st),
			OriginAltitude:  e.p.OriginAltitude,
			Schedule:        [][]topo.DeviceID{st.Devices},
			SettlePerDevice: e.p.SettlePerDevice,
		},
	})
	if err != nil {
		return StepOutcome{}, nil, fmt.Errorf("planner: step %q: %w", st.String(), err)
	}
	out := pb.finish(st.String(), events)
	child, err := e.capture(n)
	if err != nil {
		return StepOutcome{}, nil, err
	}
	return out, child, nil
}

// evalMigration forks the fully-deployed state and runs the terminal
// phase: first finalize — the intent must actually hold before the
// migration body, so devices whose live RPA config still differs from
// the intent (bare waves, transient MinNextHop overrides) get their true
// configs pushed now, all at once, and the schedule is charged for that
// unsequenced transient — then the scenario's staggered drains,
// measuring the post-deployment hazard the schedule was supposed to
// protect. The finalize set is derived from the restored state alone, so
// memoizing by state fingerprint stays sound.
func (e *evaluator) evalMigration(state []byte) (StepOutcome, error) {
	n, err := e.restore(state)
	if err != nil {
		return StepOutcome{}, err
	}
	pb := newProbe(n, e.p)
	stagger := e.p.DrainStaggerNs
	if stagger <= 0 {
		stagger = int64(20 * time.Millisecond)
	}
	var lagged []topo.DeviceID
	for _, d := range sortedDevices(e.p.Intent) {
		if !configEqual(n.Speaker(d).RPAConfig(), e.p.Intent[d]) {
			lagged = append(lagged, d)
		}
	}
	// Catch-up pushes roll one at a time on the virtual clock — config
	// pushes are never fleet-atomic in practice — and in plain device
	// order, not the §5.3.2 sequence: deferring protection buys an
	// unsequenced rollout later, and this is where that bill arrives.
	var deployErr error
	for i, dev := range lagged {
		d := dev
		n.After(time.Duration(int64(i)*stagger), func() {
			if err := n.DeployRPA(d, e.p.Intent[d]); err != nil && deployErr == nil {
				deployErr = fmt.Errorf("planner: finalize %s: %w", d, err)
			}
		})
	}
	// The drain body starts once the catch-up window closes.
	offset := int64(len(lagged)) * stagger
	for i, dev := range e.p.Drain {
		d := dev
		n.After(time.Duration(offset+int64(i)*stagger), func() { n.SetDrained(d, true) })
	}
	events := int64(0)
	if len(lagged) > 0 || len(e.p.Drain) > 0 {
		events = n.Converge()
	}
	if deployErr != nil {
		return StepOutcome{}, deployErr
	}
	return pb.finish("migration", events), nil
}

// configEqual compares two RPA configs structurally.
func configEqual(a, b *core.Config) bool {
	da, errA := json.Marshal(a)
	db, errB := json.Marshal(b)
	return errA == nil && errB == nil && string(da) == string(db)
}
