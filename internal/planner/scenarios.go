package planner

// Named scenario setups: each builds a converged base fabric, captures
// it, and returns the planning parameters for one of the repo's
// migration scenarios. planctl and the E12 experiment plan the same
// setups, so a CLI run reproduces an experiment's schedule exactly.

import (
	"fmt"

	"centralium/internal/controller"
	"centralium/internal/fabric"
	"centralium/internal/migrate"
	"centralium/internal/snapshot"
	"centralium/internal/topo"
	"centralium/internal/traffic"
)

// ScenarioNames lists the named setups, in display order.
func ScenarioNames() []string {
	return []string{"fig10", "decommission", "pod-drain"}
}

// ScenarioSetup builds a named scenario's converged base snapshot and
// planning parameters. The seed feeds both the fabric (event jitter) and
// the planner (candidate generation).
func ScenarioSetup(name string, seed int64) (*snapshot.Snapshot, Params, error) {
	switch name {
	case "fig10":
		return fig10Setup(seed)
	case "decommission":
		return rigSetup("decommission", seed)
	case "pod-drain":
		return rigSetup("pod-drain", seed)
	}
	return nil, Params{}, fmt.Errorf("planner: unknown scenario %q (have %v)", name, ScenarioNames())
}

// fig10Setup is the §5.3.2 sequencing scenario: the equalization RPA
// over the FSW/SSW/FA column of Figure 10, watching the FA layer for
// transient funneling. There is no drain body; the schedule itself is
// the whole hazard.
func fig10Setup(seed int64) (*snapshot.Snapshot, Params, error) {
	tp := topo.BuildFig10(topo.Fig10Params{FSWs: 2, SSWs: 2, FAs: 2})
	n := fabric.New(tp, fabric.Options{Seed: seed})
	n.OriginateAt(topo.EBID(0), migrate.DefaultRoute, []string{migrate.BackboneCommunity}, 0)
	n.Converge()
	snap, err := snapshot.Capture(n)
	if err != nil {
		return nil, Params{}, fmt.Errorf("planner: fig10 base: %w", err)
	}
	p := Params{
		Seed: seed,
		Intent: controller.PathEqualizationIntent(tp,
			[]topo.Layer{topo.LayerFSW, topo.LayerSSW, topo.LayerFA}, migrate.BackboneCommunity),
		OriginAltitude: topo.LayerEB.Altitude(),
		Demands:        traffic.UniformDemands(tp.ByLayer(topo.LayerFSW), migrate.DefaultRoute, 100),
		Watch:          []topo.DeviceID{topo.FAID(0), topo.FAID(1)},
	}
	return snap, p, nil
}

// rigSetup plans one of the chaos-rig migrations (decommission,
// pod-drain): the protective RPA's deployment schedule is searched, and
// every terminal candidate replays the rig's drain body to measure the
// transient the protection exists for.
func rigSetup(name string, seed int64) (*snapshot.Snapshot, Params, error) {
	var rig *migrate.ChaosRig
	switch name {
	case "decommission":
		rig = migrate.DecommissionRig(seed)
	case "pod-drain":
		rig = migrate.PodDrainRig(seed)
	}
	snap, err := snapshot.Capture(rig.Net)
	if err != nil {
		return nil, Params{}, fmt.Errorf("planner: %s base: %w", name, err)
	}
	intent, origin, err := migrate.ProtectiveIntent(name)
	if err != nil {
		return nil, Params{}, err
	}
	drains, stagger, err := migrate.DrainSchedule(name)
	if err != nil {
		return nil, Params{}, err
	}
	p := Params{
		Seed:           seed,
		Intent:         intent,
		OriginAltitude: origin,
		Demands:        rig.Demands,
		Watch:          watchFor(rig),
		Drain:          drains,
		DrainStaggerNs: int64(stagger),
	}
	return snap, p, nil
}

// watchFor picks the funneling watch set for a rig: the layer the
// scenario funnels onto (FADUs for the decommission mesh, SSWs for the
// pod drain), falling back to the protected devices.
func watchFor(rig *migrate.ChaosRig) []topo.DeviceID {
	for _, layer := range []topo.Layer{topo.LayerFADU, topo.LayerSSW} {
		var out []topo.DeviceID
		for _, d := range rig.Net.Topo.ByLayer(layer) {
			out = append(out, d.ID)
		}
		if len(out) > 0 {
			return out
		}
	}
	return rig.Protected
}
