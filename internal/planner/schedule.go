// Package planner searches the deployment-schedule space of a migration
// intent instead of replaying the paper's fixed §5.3.2 bottom-up order.
// Given a converged fabric snapshot and a per-device RPA intent, it
// generates candidate schedules — wave orderings, batch sizes, RPA on/off
// per wave, MinNextHop threshold overrides — and evaluates each candidate
// by forking the snapshot and pushing the schedule through the real
// rollout path (controller.Execute) on the fork, scoring the transient
// with the telemetry pathology detectors plus convergence time.
//
// The search is a seeded beam search with snapshot-fingerprint
// memoization: encoded snapshots double as state fingerprints, so two
// schedule prefixes that reach byte-identical fabric states share every
// downstream evaluation. Candidate evaluation fans across a worker pool;
// results are deterministic — same seed, same winning schedule, byte for
// byte, regardless of worker count, and across a mid-search
// checkpoint/restore.
package planner

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"centralium/internal/controller"
	"centralium/internal/core"
	"centralium/internal/topo"
)

// Step is one deployment wave of a candidate schedule: a batch of devices
// pushed together (settling per the planner's cadence), with the wave's
// protection knobs.
type Step struct {
	// Devices deploy in this wave, in order.
	Devices []topo.DeviceID

	// Bare strips every RPA statement from the wave's configs — the
	// "deploy without protection" arm of the search. The version still
	// pushes, so the fleet state stays consistent; only the protective
	// behavior is absent.
	Bare bool

	// MinNextHop, when positive, overrides the BgpNativeMinNextHop
	// percentage of the wave's PathSelection statements that already
	// carry one (a searchable protection threshold).
	MinNextHop int
}

// Clone deep-copies the step.
func (s Step) Clone() Step {
	out := s
	out.Devices = append([]topo.DeviceID(nil), s.Devices...)
	return out
}

// String renders the step in the canonical schedule syntax:
// "dev1,dev2" with optional "!bare" and "!mnh=NN" suffixes.
func (s Step) String() string {
	var b strings.Builder
	for i, d := range s.Devices {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(d))
	}
	if s.Bare {
		b.WriteString("!bare")
	}
	if s.MinNextHop > 0 {
		fmt.Fprintf(&b, "!mnh=%d", s.MinNextHop)
	}
	return b.String()
}

// Schedule is one complete deployment plan: waves in execution order.
type Schedule struct {
	Steps []Step
}

// String renders the canonical text form — the golden-file and planctl
// interchange format. Equal schedules render byte-identically.
func (s Schedule) String() string {
	parts := make([]string, len(s.Steps))
	for i, st := range s.Steps {
		parts[i] = st.String()
	}
	return strings.Join(parts, " > ")
}

// Clone deep-copies the schedule.
func (s Schedule) Clone() Schedule {
	out := Schedule{Steps: make([]Step, len(s.Steps))}
	for i, st := range s.Steps {
		out.Steps[i] = st.Clone()
	}
	return out
}

// Devices returns every device the schedule deploys, in deployment order.
func (s Schedule) Devices() []topo.DeviceID {
	var out []topo.DeviceID
	for _, st := range s.Steps {
		out = append(out, st.Devices...)
	}
	return out
}

// Waves converts the schedule to the controller's explicit wave form.
func (s Schedule) Waves() [][]topo.DeviceID {
	waves := make([][]topo.DeviceID, len(s.Steps))
	for i, st := range s.Steps {
		waves[i] = append([]topo.DeviceID(nil), st.Devices...)
	}
	return waves
}

// Parse reads the canonical text form back into a Schedule.
func Parse(text string) (Schedule, error) {
	var out Schedule
	text = strings.TrimSpace(text)
	if text == "" {
		return out, nil
	}
	for _, part := range strings.Split(text, ">") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Schedule{}, fmt.Errorf("planner: empty step in schedule %q", text)
		}
		fields := strings.Split(part, "!")
		var st Step
		for _, dev := range strings.Split(fields[0], ",") {
			dev = strings.TrimSpace(dev)
			if dev == "" {
				return Schedule{}, fmt.Errorf("planner: empty device in step %q", part)
			}
			st.Devices = append(st.Devices, topo.DeviceID(dev))
		}
		for _, opt := range fields[1:] {
			opt = strings.TrimSpace(opt)
			switch {
			case opt == "bare":
				st.Bare = true
			case strings.HasPrefix(opt, "mnh="):
				v, err := strconv.Atoi(opt[len("mnh="):])
				if err != nil || v <= 0 || v > 100 {
					return Schedule{}, fmt.Errorf("planner: bad mnh option %q in step %q", opt, part)
				}
				st.MinNextHop = v
			default:
				return Schedule{}, fmt.Errorf("planner: unknown step option %q in step %q", opt, part)
			}
		}
		out.Steps = append(out.Steps, st)
	}
	return out, nil
}

// FromWaves wraps an explicit wave schedule (e.g. controller.Waves output
// or controller.RandomOrderWaves) as a plain protected Schedule.
func FromWaves(waves [][]topo.DeviceID) Schedule {
	out := Schedule{Steps: make([]Step, 0, len(waves))}
	for _, w := range waves {
		if len(w) == 0 {
			continue
		}
		out.Steps = append(out.Steps, Step{Devices: append([]topo.DeviceID(nil), w...)})
	}
	return out
}

// stepConfig derives the config actually pushed to one device by a step:
// the intent's config with the step's knobs applied.
func stepConfig(cfg *core.Config, st Step) *core.Config {
	out := cfg.Clone()
	if st.Bare {
		out.PathSelection = nil
		out.RouteAttribute = nil
		out.RouteFilter = nil
	}
	if st.MinNextHop > 0 {
		for i := range out.PathSelection {
			if out.PathSelection[i].BgpNativeMinNextHop.Percent > 0 {
				out.PathSelection[i].BgpNativeMinNextHop.Percent = float64(st.MinNextHop)
			}
		}
	}
	return out
}

// stepIntent restricts an intent to a step's devices with the step's
// config transforms applied.
func stepIntent(in controller.Intent, st Step) controller.Intent {
	out := make(controller.Intent, len(st.Devices))
	for _, d := range st.Devices {
		if cfg, ok := in[d]; ok {
			out[d] = stepConfig(cfg, st)
		}
	}
	return out
}

// Intent restricts a full campaign intent to the step's devices with the
// step's config transforms applied — the same projection the search's
// evaluator pushes through the rollout path. Exported so the execution
// guard (internal/guard) can derive degraded retry shapes (smaller
// batches, MinNextHop overrides) that deploy exactly what the planner
// would have deployed.
func (st Step) Intent(in controller.Intent) controller.Intent {
	return stepIntent(in, st)
}

// sortedDevices returns an intent's devices sorted (stable candidate
// generation never iterates a map directly).
func sortedDevices(in controller.Intent) []topo.DeviceID {
	out := make([]topo.DeviceID, 0, len(in))
	for d := range in {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
