package topo

import (
	"encoding/json"
	"fmt"
)

// Serialization: topologies export to and import from a plain JSON document
// so tools (fabsim, qualification suites, external generators) can exchange
// fabric descriptions. ASNs are preserved exactly; Validate runs on import.

// document is the on-disk topology schema.
type document struct {
	Devices []Device `json:"devices"`
	Links   []Link   `json:"links"`
}

// ExportJSON renders the topology as indented JSON.
func (t *Topology) ExportJSON() ([]byte, error) {
	doc := document{Devices: nil, Links: t.links}
	for _, d := range t.Devices() {
		doc.Devices = append(doc.Devices, *d)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// ImportJSON parses a topology document, validates it, and returns the
// topology. Devices keep their serialized ASNs; the internal allocator
// resumes above the highest one so later AddDevice calls stay collision
// free.
func ImportJSON(data []byte) (*Topology, error) {
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("topo: parse topology: %w", err)
	}
	t := New()
	maxASN := t.nextASN - 1
	for _, d := range doc.Devices {
		if d.ID == "" {
			return nil, fmt.Errorf("topo: device with empty ID")
		}
		if _, dup := t.devices[d.ID]; dup {
			return nil, fmt.Errorf("topo: duplicate device %q", d.ID)
		}
		dev := d
		t.devices[d.ID] = &dev
		if d.ASN > maxASN {
			maxASN = d.ASN
		}
	}
	t.nextASN = maxASN + 1
	for i, l := range doc.Links {
		if _, ok := t.devices[l.A]; !ok {
			return nil, fmt.Errorf("topo: link %d references missing device %q", i, l.A)
		}
		if _, ok := t.devices[l.B]; !ok {
			return nil, fmt.Errorf("topo: link %d references missing device %q", i, l.B)
		}
		t.AddLink(l.A, l.B, l.CapacityGbps)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
