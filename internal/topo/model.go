// Package topo models Meta-style data center topologies: the five switch
// layers of the paper's Figure 1 (RSW, FSW, SSW, FADU, FAUU) plus the
// backbone (EB) and the legacy layers (FAv1, Edge, FA, DMAG) that appear in
// the migration scenarios of Sections 3 and 5.
//
// A Topology is a plain undirected multigraph of Devices and Links. Logical
// groupings (pod, plane, grid) are attributes on the device, as in
// production, rather than first-class containers. Builders for the paper's
// concrete scenario topologies live in builders.go.
package topo

import (
	"fmt"
	"sort"
)

// Layer identifies a horizontal switch layer. Order matters: it encodes
// vertical position (distance from the servers) and is used by the
// controller's deployment sequencing (Section 5.3.2).
type Layer int

// The layers of the production topology (Figure 1) followed by the legacy
// layers used in the scenario topologies.
const (
	LayerRSW  Layer = iota // rack switch
	LayerFSW               // fabric switch
	LayerSSW               // spine switch
	LayerFADU              // fabric aggregate downlink unit
	LayerFAUU              // fabric aggregate uplink unit
	LayerEB                // backbone device

	// Legacy layers for the Figure 2 expansion scenario and the Figure 10
	// sequencing scenario.
	LayerFAv1 // old fabric aggregator (replaced in scenario 1)
	LayerEdge // old edge layer (replaced in scenario 1)
	LayerFAv2 // new, bigger fabric aggregator (introduced in scenario 1)
	LayerFA   // generic fabric aggregator (Figure 10)
	LayerDMAG // disaggregation/metro aggregation layer (Figure 10)

	// Scenario 3 (Figure 5) layers.
	LayerUU // uplink unit
	LayerDU // downlink unit

	// LayerGeneric is for ad-hoc test topologies (e.g. Figure 9's R1..R6).
	LayerGeneric
)

var layerNames = map[Layer]string{
	LayerRSW:     "RSW",
	LayerFSW:     "FSW",
	LayerSSW:     "SSW",
	LayerFADU:    "FADU",
	LayerFAUU:    "FAUU",
	LayerEB:      "EB",
	LayerFAv1:    "FAv1",
	LayerEdge:    "Edge",
	LayerFAv2:    "FAv2",
	LayerFA:      "FA",
	LayerDMAG:    "DMAG",
	LayerUU:      "UU",
	LayerDU:      "DU",
	LayerGeneric: "R",
}

// String returns the conventional short name of the layer (e.g. "SSW").
func (l Layer) String() string {
	if s, ok := layerNames[l]; ok {
		return s
	}
	return fmt.Sprintf("Layer(%d)", int(l))
}

// Altitude returns the layer's vertical position: 0 at the rack layer,
// increasing toward the backbone. Legacy layers are mapped onto the
// equivalent production altitude. Deployment sequencing deploys RPAs in
// increasing altitude order when routes originate above (Section 5.3.2).
func (l Layer) Altitude() int {
	switch l {
	case LayerRSW:
		return 0
	case LayerFSW:
		return 1
	case LayerSSW:
		return 2
	case LayerFADU, LayerFAv1, LayerFA, LayerDU:
		return 3
	case LayerFAUU, LayerEdge, LayerFAv2, LayerDMAG, LayerUU:
		return 4
	case LayerEB:
		return 5
	default:
		return 2
	}
}

// DeviceID names a device, e.g. "ssw.p2.3" (plane 2, index 3).
type DeviceID string

// Device is one switch or router in the topology.
type Device struct {
	ID    DeviceID
	Layer Layer
	ASN   uint32 // every device is its own autonomous system (eBGP everywhere)

	// Logical groupings; -1 when not applicable for the layer.
	Pod   int
	Plane int
	Grid  int
	Index int // position within its group
}

// Link is one undirected adjacency carrying one BGP session. Parallel links
// between the same pair of devices are allowed and carry independent
// sessions (Figure 5 uses two sessions per UU-DU pair).
type Link struct {
	A, B         DeviceID
	CapacityGbps float64
}

// Topology is an undirected multigraph of devices. The zero value is not
// usable; construct with New.
type Topology struct {
	devices map[DeviceID]*Device
	links   []Link
	adj     map[DeviceID][]int // device -> indices into links

	nextASN uint32
}

// asnBase is the first ASN handed out. Private 4-byte range.
const asnBase uint32 = 4200000000

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		devices: make(map[DeviceID]*Device),
		adj:     make(map[DeviceID][]int),
		nextASN: asnBase,
	}
}

// Clone returns an independent deep copy: mutating either topology (link
// removals, decommissions) never touches the other. It is the cheap path
// for fanning one imported topology out to many forked networks, where
// re-parsing the JSON export per fork would dominate the restore cost.
func (t *Topology) Clone() *Topology {
	c := &Topology{
		devices: make(map[DeviceID]*Device, len(t.devices)),
		links:   append([]Link(nil), t.links...),
		adj:     make(map[DeviceID][]int, len(t.adj)),
		nextASN: t.nextASN,
	}
	for id, d := range t.devices {
		cd := *d
		c.devices[id] = &cd
	}
	for id, idx := range t.adj {
		c.adj[id] = append([]int(nil), idx...)
	}
	return c
}

// AddDevice inserts a device, assigning it the next free ASN. It panics on a
// duplicate ID: topologies are built by code, so a duplicate is a programming
// error, not an input error.
func (t *Topology) AddDevice(d Device) *Device {
	if _, ok := t.devices[d.ID]; ok {
		panic(fmt.Sprintf("topo: duplicate device %q", d.ID))
	}
	if d.ASN == 0 {
		d.ASN = t.nextASN
		t.nextASN++
	}
	dev := d
	t.devices[d.ID] = &dev
	return &dev
}

// AddLink inserts an undirected link between two existing devices and
// returns its index. It panics if either endpoint is unknown.
func (t *Topology) AddLink(a, b DeviceID, capacityGbps float64) int {
	if _, ok := t.devices[a]; !ok {
		panic(fmt.Sprintf("topo: link endpoint %q not found", a))
	}
	if _, ok := t.devices[b]; !ok {
		panic(fmt.Sprintf("topo: link endpoint %q not found", b))
	}
	idx := len(t.links)
	t.links = append(t.links, Link{A: a, B: b, CapacityGbps: capacityGbps})
	t.adj[a] = append(t.adj[a], idx)
	t.adj[b] = append(t.adj[b], idx)
	return idx
}

// Device returns the device with the given ID, or nil.
func (t *Topology) Device(id DeviceID) *Device { return t.devices[id] }

// NumDevices reports the number of devices.
func (t *Topology) NumDevices() int { return len(t.devices) }

// NumLinks reports the number of links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Links returns all links. The slice is owned by the topology.
func (t *Topology) Links() []Link { return t.links }

// Link returns the link at index i.
func (t *Topology) Link(i int) Link { return t.links[i] }

// Devices returns all devices sorted by ID for deterministic iteration.
func (t *Topology) Devices() []*Device {
	out := make([]*Device, 0, len(t.devices))
	for _, d := range t.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByLayer returns the devices of one layer sorted by ID.
func (t *Topology) ByLayer(l Layer) []*Device {
	var out []*Device
	for _, d := range t.devices {
		if d.Layer == l {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Layers returns the distinct layers present, sorted by altitude then value.
func (t *Topology) Layers() []Layer {
	seen := make(map[Layer]bool)
	for _, d := range t.devices {
		seen[d.Layer] = true
	}
	out := make([]Layer, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Altitude(), out[j].Altitude()
		if ai != aj {
			return ai < aj
		}
		return out[i] < out[j]
	})
	return out
}

// Neighbors returns the IDs adjacent to id, with multiplicity for parallel
// links, sorted for determinism.
func (t *Topology) Neighbors(id DeviceID) []DeviceID {
	var out []DeviceID
	for _, li := range t.adj[id] {
		l := t.links[li]
		other := l.A
		if other == id {
			other = l.B
		}
		out = append(out, other)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinksOf returns the indices of links incident to id.
func (t *Topology) LinksOf(id DeviceID) []int { return t.adj[id] }

// RemoveLinks removes all links between a and b. It returns the number
// removed. Device entries are untouched. Indices of remaining links change;
// callers holding indices must re-resolve them.
func (t *Topology) RemoveLinks(a, b DeviceID) int {
	removed := 0
	kept := t.links[:0]
	for _, l := range t.links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			removed++
			continue
		}
		kept = append(kept, l)
	}
	t.links = kept
	t.reindex()
	return removed
}

// RemoveDevice removes a device and all incident links.
func (t *Topology) RemoveDevice(id DeviceID) {
	if _, ok := t.devices[id]; !ok {
		return
	}
	delete(t.devices, id)
	kept := t.links[:0]
	for _, l := range t.links {
		if l.A == id || l.B == id {
			continue
		}
		kept = append(kept, l)
	}
	t.links = kept
	t.reindex()
}

func (t *Topology) reindex() {
	t.adj = make(map[DeviceID][]int, len(t.devices))
	for i, l := range t.links {
		t.adj[l.A] = append(t.adj[l.A], i)
		t.adj[l.B] = append(t.adj[l.B], i)
	}
}

// Validate checks structural invariants: link endpoints exist, capacities
// are positive, ASNs are unique. It returns the first problem found.
func (t *Topology) Validate() error {
	asns := make(map[uint32]DeviceID, len(t.devices))
	for id, d := range t.devices {
		if prev, dup := asns[d.ASN]; dup {
			return fmt.Errorf("topo: ASN %d assigned to both %q and %q", d.ASN, prev, id)
		}
		asns[d.ASN] = id
	}
	for i, l := range t.links {
		if _, ok := t.devices[l.A]; !ok {
			return fmt.Errorf("topo: link %d references missing device %q", i, l.A)
		}
		if _, ok := t.devices[l.B]; !ok {
			return fmt.Errorf("topo: link %d references missing device %q", i, l.B)
		}
		if l.CapacityGbps <= 0 {
			return fmt.Errorf("topo: link %d (%s-%s) has non-positive capacity", i, l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("topo: link %d is a self-loop on %q", i, l.A)
		}
	}
	return nil
}
