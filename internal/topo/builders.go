package topo

import "fmt"

// FabricParams sizes a production-style fabric (Figure 1). Zero fields get
// small defaults suitable for tests; Scale* helpers produce paper-scale
// ratios.
type FabricParams struct {
	Pods         int // fabric pods
	RSWsPerPod   int
	FSWsPerPod   int
	Planes       int // spine planes; FSW i in each pod connects to plane i
	SSWsPerPlane int
	Grids        int // FA grids
	FADUsPerGrid int
	FAUUsPerGrid int
	EBs          int // backbone devices

	RackLinkGbps   float64 // RSW-FSW
	FabricLinkGbps float64 // FSW-SSW
	SpineLinkGbps  float64 // SSW-FADU
	FALinkGbps     float64 // FADU-FAUU
	EdgeLinkGbps   float64 // FAUU-EB
}

func (p *FabricParams) setDefaults() {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&p.Pods, 2)
	def(&p.RSWsPerPod, 4)
	def(&p.FSWsPerPod, 4)
	def(&p.Planes, 4)
	def(&p.SSWsPerPlane, 2)
	def(&p.Grids, 2)
	def(&p.FADUsPerGrid, 2)
	def(&p.FAUUsPerGrid, 2)
	def(&p.EBs, 2)
	deff(&p.RackLinkGbps, 100)
	deff(&p.FabricLinkGbps, 200)
	deff(&p.SpineLinkGbps, 400)
	deff(&p.FALinkGbps, 400)
	deff(&p.EdgeLinkGbps, 400)
}

// BuildFabric constructs a five-layer fabric plus backbone per Figure 1:
//
//   - each pod holds RSWs and FSWs; every RSW connects to every FSW in its pod
//   - FSW i of every pod connects to all SSWs of plane i (requires
//     FSWsPerPod == Planes)
//   - every SSW connects to one FADU in every grid — SSW j to FADU (j mod
//     FADUsPerGrid), the numbering-based wiring the decommission scenario
//     (Figure 4) relies on
//   - within a grid, every FADU connects to every FAUU
//   - every FAUU connects to every EB
func BuildFabric(p FabricParams) *Topology {
	p.setDefaults()
	if p.FSWsPerPod != p.Planes {
		panic(fmt.Sprintf("topo: FSWsPerPod (%d) must equal Planes (%d)", p.FSWsPerPod, p.Planes))
	}
	t := New()

	for pod := 0; pod < p.Pods; pod++ {
		for i := 0; i < p.RSWsPerPod; i++ {
			t.AddDevice(Device{ID: RSWID(pod, i), Layer: LayerRSW, Pod: pod, Plane: -1, Grid: -1, Index: i})
		}
		for i := 0; i < p.FSWsPerPod; i++ {
			t.AddDevice(Device{ID: FSWID(pod, i), Layer: LayerFSW, Pod: pod, Plane: i, Grid: -1, Index: i})
		}
	}
	for plane := 0; plane < p.Planes; plane++ {
		for i := 0; i < p.SSWsPerPlane; i++ {
			t.AddDevice(Device{ID: SSWID(plane, i), Layer: LayerSSW, Pod: -1, Plane: plane, Grid: -1, Index: i})
		}
	}
	for grid := 0; grid < p.Grids; grid++ {
		for i := 0; i < p.FADUsPerGrid; i++ {
			t.AddDevice(Device{ID: FADUID(grid, i), Layer: LayerFADU, Pod: -1, Plane: -1, Grid: grid, Index: i})
		}
		for i := 0; i < p.FAUUsPerGrid; i++ {
			t.AddDevice(Device{ID: FAUUID(grid, i), Layer: LayerFAUU, Pod: -1, Plane: -1, Grid: grid, Index: i})
		}
	}
	for i := 0; i < p.EBs; i++ {
		t.AddDevice(Device{ID: EBID(i), Layer: LayerEB, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}

	// RSW <-> FSW within a pod (full mesh).
	for pod := 0; pod < p.Pods; pod++ {
		for r := 0; r < p.RSWsPerPod; r++ {
			for f := 0; f < p.FSWsPerPod; f++ {
				t.AddLink(RSWID(pod, r), FSWID(pod, f), p.RackLinkGbps)
			}
		}
	}
	// FSW i (any pod) <-> all SSWs of plane i.
	for pod := 0; pod < p.Pods; pod++ {
		for f := 0; f < p.FSWsPerPod; f++ {
			for s := 0; s < p.SSWsPerPlane; s++ {
				t.AddLink(FSWID(pod, f), SSWID(f, s), p.FabricLinkGbps)
			}
		}
	}
	// SSW j <-> FADU (j mod FADUsPerGrid) in every grid.
	for plane := 0; plane < p.Planes; plane++ {
		for s := 0; s < p.SSWsPerPlane; s++ {
			for grid := 0; grid < p.Grids; grid++ {
				t.AddLink(SSWID(plane, s), FADUID(grid, s%p.FADUsPerGrid), p.SpineLinkGbps)
			}
		}
	}
	// FADU <-> FAUU within a grid (full mesh).
	for grid := 0; grid < p.Grids; grid++ {
		for d := 0; d < p.FADUsPerGrid; d++ {
			for u := 0; u < p.FAUUsPerGrid; u++ {
				t.AddLink(FADUID(grid, d), FAUUID(grid, u), p.FALinkGbps)
			}
		}
	}
	// FAUU <-> EB (full mesh).
	for grid := 0; grid < p.Grids; grid++ {
		for u := 0; u < p.FAUUsPerGrid; u++ {
			for e := 0; e < p.EBs; e++ {
				t.AddLink(FAUUID(grid, u), EBID(e), p.EdgeLinkGbps)
			}
		}
	}
	return t
}

// Canonical device ID constructors. Keeping them as functions (rather than
// fmt.Sprintf at call sites) makes scenario code and tests agree on names.

// RSWID names rack switch i of a pod.
func RSWID(pod, i int) DeviceID { return DeviceID(fmt.Sprintf("rsw.pod%d.%d", pod, i)) }

// FSWID names fabric switch i of a pod.
func FSWID(pod, i int) DeviceID { return DeviceID(fmt.Sprintf("fsw.pod%d.%d", pod, i)) }

// SSWID names spine switch i of a plane.
func SSWID(plane, i int) DeviceID { return DeviceID(fmt.Sprintf("ssw.pl%d.%d", plane, i)) }

// FADUID names FA downlink unit i of a grid.
func FADUID(grid, i int) DeviceID { return DeviceID(fmt.Sprintf("fadu.g%d.%d", grid, i)) }

// FAUUID names FA uplink unit i of a grid.
func FAUUID(grid, i int) DeviceID { return DeviceID(fmt.Sprintf("fauu.g%d.%d", grid, i)) }

// EBID names backbone device i.
func EBID(i int) DeviceID { return DeviceID(fmt.Sprintf("eb.%d", i)) }

// ExpansionParams sizes the Figure 2 scenario topology: SSWs reach the
// backbone through an old FAv1+Edge chain, and a new single FAv2 layer is
// introduced to replace both.
type ExpansionParams struct {
	SSWs      int
	FAv1s     int
	Edges     int
	FAv2s     int // devices pre-created but NOT linked; activate incrementally
	LinkGbps  float64
	FAv2Gbps  float64 // capacity of the new layer's links (bigger)
	Backbones int
}

func (p *ExpansionParams) setDefaults() {
	if p.SSWs <= 0 {
		p.SSWs = 4
	}
	if p.FAv1s <= 0 {
		p.FAv1s = 4
	}
	if p.Edges <= 0 {
		p.Edges = 4
	}
	if p.FAv2s <= 0 {
		p.FAv2s = 4
	}
	if p.LinkGbps <= 0 {
		p.LinkGbps = 100
	}
	if p.FAv2Gbps <= 0 {
		p.FAv2Gbps = 400
	}
	if p.Backbones <= 0 {
		p.Backbones = 2
	}
}

// Expansion is the Figure 2 scenario topology plus the bookkeeping needed to
// activate FAv2 nodes one at a time.
type Expansion struct {
	*Topology
	Params ExpansionParams
}

// FAv2ID names new fabric aggregator i.
func FAv2ID(i int) DeviceID { return DeviceID(fmt.Sprintf("fav2.%d", i)) }

// FAv1ID names old fabric aggregator i.
func FAv1ID(i int) DeviceID { return DeviceID(fmt.Sprintf("fav1.%d", i)) }

// EdgeID names old edge device i.
func EdgeID(i int) DeviceID { return DeviceID(fmt.Sprintf("edge.%d", i)) }

// BuildExpansion constructs the initial state of the Figure 2 migration:
//
//	SSW[0..n) — FAv1[0..m) — Edge[0..k) — EB[0..b)
//
// FAv2 devices exist but have no links; ActivateFAv2 wires one in, creating
// the shorter SSW—FAv2—EB path that triggers the first-router problem under
// native BGP.
func BuildExpansion(p ExpansionParams) *Expansion {
	p.setDefaults()
	t := New()
	for i := 0; i < p.SSWs; i++ {
		t.AddDevice(Device{ID: SSWID(0, i), Layer: LayerSSW, Plane: 0, Pod: -1, Grid: -1, Index: i})
	}
	for i := 0; i < p.FAv1s; i++ {
		t.AddDevice(Device{ID: FAv1ID(i), Layer: LayerFAv1, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}
	for i := 0; i < p.Edges; i++ {
		t.AddDevice(Device{ID: EdgeID(i), Layer: LayerEdge, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}
	for i := 0; i < p.FAv2s; i++ {
		t.AddDevice(Device{ID: FAv2ID(i), Layer: LayerFAv2, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}
	for i := 0; i < p.Backbones; i++ {
		t.AddDevice(Device{ID: EBID(i), Layer: LayerEB, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}
	for s := 0; s < p.SSWs; s++ {
		for f := 0; f < p.FAv1s; f++ {
			t.AddLink(SSWID(0, s), FAv1ID(f), p.LinkGbps)
		}
	}
	for f := 0; f < p.FAv1s; f++ {
		for e := 0; e < p.Edges; e++ {
			t.AddLink(FAv1ID(f), EdgeID(e), p.LinkGbps)
		}
	}
	for e := 0; e < p.Edges; e++ {
		for b := 0; b < p.Backbones; b++ {
			t.AddLink(EdgeID(e), EBID(b), p.LinkGbps)
		}
	}
	return &Expansion{Topology: t, Params: p}
}

// ActivateFAv2 wires FAv2 node i to every SSW and every backbone device,
// returning the IDs of the links' endpoints. This is one incremental
// deployment step of the scenario 1 migration.
func (e *Expansion) ActivateFAv2(i int) DeviceID {
	id := FAv2ID(i)
	for s := 0; s < e.Params.SSWs; s++ {
		e.AddLink(SSWID(0, s), id, e.Params.FAv2Gbps)
	}
	for b := 0; b < e.Params.Backbones; b++ {
		e.AddLink(id, EBID(b), e.Params.FAv2Gbps)
	}
	return id
}

// RemoveOldLayers deletes all FAv1 and Edge devices (the final migration
// step of scenario 1).
func (e *Expansion) RemoveOldLayers() {
	for i := 0; i < e.Params.FAv1s; i++ {
		e.RemoveDevice(FAv1ID(i))
	}
	for i := 0; i < e.Params.Edges; i++ {
		e.RemoveDevice(EdgeID(i))
	}
}

// MeshParams sizes the Figure 4 decommission scenario: Planes×N SSWs and
// Grids×N FADUs where SSW-n of every plane connects only to FADU-n of every
// grid.
type MeshParams struct {
	Planes       int
	Grids        int
	PerGroup     int // N: switches per plane and per grid
	FSWsPerPlane int // traffic-source layer: each FSW connects to all SSWs of its plane
	LinkGbps     float64
	Backbones    int // each FADU uplinks to all backbones so traffic has a sink
}

func (p *MeshParams) setDefaults() {
	if p.Planes <= 0 {
		p.Planes = 2
	}
	if p.Grids <= 0 {
		p.Grids = 2
	}
	if p.PerGroup <= 0 {
		p.PerGroup = 4
	}
	if p.FSWsPerPlane <= 0 {
		p.FSWsPerPlane = 2
	}
	if p.LinkGbps <= 0 {
		p.LinkGbps = 100
	}
	if p.Backbones <= 0 {
		p.Backbones = 2
	}
}

// BuildMesh constructs the Figure 4 numbering-wired SSW/FADU mesh, with an
// FSW layer below the SSWs acting as the northbound traffic source (every
// FSW connects to all SSWs of its plane, so traffic can shift between SSW
// numbers when one withdraws).
func BuildMesh(p MeshParams) *Topology {
	p.setDefaults()
	t := New()
	for plane := 0; plane < p.Planes; plane++ {
		for i := 0; i < p.FSWsPerPlane; i++ {
			t.AddDevice(Device{ID: FSWID(plane, i), Layer: LayerFSW, Pod: plane, Plane: plane, Grid: -1, Index: i})
		}
		for n := 0; n < p.PerGroup; n++ {
			t.AddDevice(Device{ID: SSWID(plane, n), Layer: LayerSSW, Plane: plane, Pod: -1, Grid: -1, Index: n})
		}
	}
	for grid := 0; grid < p.Grids; grid++ {
		for n := 0; n < p.PerGroup; n++ {
			t.AddDevice(Device{ID: FADUID(grid, n), Layer: LayerFADU, Grid: grid, Pod: -1, Plane: -1, Index: n})
		}
	}
	for i := 0; i < p.Backbones; i++ {
		t.AddDevice(Device{ID: EBID(i), Layer: LayerEB, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}
	// FSW <-> every SSW of its plane.
	for plane := 0; plane < p.Planes; plane++ {
		for i := 0; i < p.FSWsPerPlane; i++ {
			for n := 0; n < p.PerGroup; n++ {
				t.AddLink(FSWID(plane, i), SSWID(plane, n), p.LinkGbps)
			}
		}
	}
	// SSW-n (every plane) <-> FADU-n (every grid): same-number wiring.
	for plane := 0; plane < p.Planes; plane++ {
		for grid := 0; grid < p.Grids; grid++ {
			for n := 0; n < p.PerGroup; n++ {
				t.AddLink(SSWID(plane, n), FADUID(grid, n), p.LinkGbps)
			}
		}
	}
	for grid := 0; grid < p.Grids; grid++ {
		for n := 0; n < p.PerGroup; n++ {
			for b := 0; b < p.Backbones; b++ {
				t.AddLink(FADUID(grid, n), EBID(b), p.LinkGbps)
			}
		}
	}
	return t
}

// UUID names uplink unit i (Figure 5).
func UUID(i int) DeviceID { return DeviceID(fmt.Sprintf("uu.%d", i)) }

// DUID names downlink unit i (Figure 5).
func DUID(i int) DeviceID { return DeviceID(fmt.Sprintf("du.%d", i)) }

// BuildFig5 constructs the Figure 5 WCMP-convergence topology: ebs backbone
// devices each connected to every UU, and every UU connected to each DU by
// sessionsPerPair parallel links (the paper uses 8 EBs, 4 UUs, 1 DU, 2
// sessions per UU-DU pair).
func BuildFig5(ebs, uus, dus, sessionsPerPair int, linkGbps float64) *Topology {
	if linkGbps <= 0 {
		linkGbps = 100
	}
	t := New()
	for i := 0; i < ebs; i++ {
		t.AddDevice(Device{ID: EBID(i), Layer: LayerEB, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}
	for i := 0; i < uus; i++ {
		t.AddDevice(Device{ID: UUID(i), Layer: LayerUU, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}
	for i := 0; i < dus; i++ {
		t.AddDevice(Device{ID: DUID(i), Layer: LayerDU, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}
	for e := 0; e < ebs; e++ {
		for u := 0; u < uus; u++ {
			t.AddLink(EBID(e), UUID(u), linkGbps)
		}
	}
	for u := 0; u < uus; u++ {
		for d := 0; d < dus; d++ {
			for s := 0; s < sessionsPerPair; s++ {
				t.AddLink(UUID(u), DUID(d), linkGbps)
			}
		}
	}
	return t
}

// GenericID names ad-hoc router i ("r1", "r2", ...).
func GenericID(i int) DeviceID { return DeviceID(fmt.Sprintf("r%d", i)) }

// BuildFig9 constructs the six-router interop topology of Figure 9:
//
//	R1 peers with R2 and R5 (and is the upstream source of prefix D);
//	R6 peers with R2, R3, R4 and R5.
//
// R6 is the RPA-augmented speaker; R1–R5 run native multipath BGP.
func BuildFig9(linkGbps float64) *Topology {
	if linkGbps <= 0 {
		linkGbps = 100
	}
	t := New()
	for i := 1; i <= 6; i++ {
		t.AddDevice(Device{ID: GenericID(i), Layer: LayerGeneric, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}
	pairs := [][2]int{{1, 2}, {1, 5}, {2, 6}, {3, 6}, {4, 6}, {5, 6}}
	for _, pr := range pairs {
		t.AddLink(GenericID(pr[0]), GenericID(pr[1]), linkGbps)
	}
	return t
}

// FAID names fabric aggregator i (Figure 10).
func FAID(i int) DeviceID { return DeviceID(fmt.Sprintf("fa.%d", i)) }

// DMAGID names the DMAG device (Figure 10 has one).
func DMAGID(i int) DeviceID { return DeviceID(fmt.Sprintf("dmag.%d", i)) }

// Fig10Params sizes the Figure 10 sequencing topology.
type Fig10Params struct {
	FSWs, SSWs, FAs int
	LinkGbps        float64
}

// BuildFig10 constructs the Figure 10 deployment-sequencing topology: a DC
// (FSW—SSW—FA) whose FAs reach the backbone both directly and through a
// longer DMAG backup path.
func BuildFig10(p Fig10Params) *Topology {
	if p.FSWs <= 0 {
		p.FSWs = 2
	}
	if p.SSWs <= 0 {
		p.SSWs = 2
	}
	if p.FAs <= 0 {
		p.FAs = 2
	}
	if p.LinkGbps <= 0 {
		p.LinkGbps = 100
	}
	t := New()
	for i := 0; i < p.FSWs; i++ {
		t.AddDevice(Device{ID: FSWID(0, i), Layer: LayerFSW, Pod: 0, Plane: -1, Grid: -1, Index: i})
	}
	for i := 0; i < p.SSWs; i++ {
		t.AddDevice(Device{ID: SSWID(0, i), Layer: LayerSSW, Plane: 0, Pod: -1, Grid: -1, Index: i})
	}
	for i := 0; i < p.FAs; i++ {
		t.AddDevice(Device{ID: FAID(i), Layer: LayerFA, Pod: -1, Plane: -1, Grid: -1, Index: i})
	}
	t.AddDevice(Device{ID: DMAGID(0), Layer: LayerDMAG, Pod: -1, Plane: -1, Grid: -1, Index: 0})
	t.AddDevice(Device{ID: EBID(0), Layer: LayerEB, Pod: -1, Plane: -1, Grid: -1, Index: 0})

	for f := 0; f < p.FSWs; f++ {
		for s := 0; s < p.SSWs; s++ {
			t.AddLink(FSWID(0, f), SSWID(0, s), p.LinkGbps)
		}
	}
	for s := 0; s < p.SSWs; s++ {
		for a := 0; a < p.FAs; a++ {
			t.AddLink(SSWID(0, s), FAID(a), p.LinkGbps)
		}
	}
	for a := 0; a < p.FAs; a++ {
		t.AddLink(FAID(a), EBID(0), p.LinkGbps)   // direct (short) path
		t.AddLink(FAID(a), DMAGID(0), p.LinkGbps) // backup path via DMAG
	}
	t.AddLink(DMAGID(0), EBID(0), p.LinkGbps)
	return t
}
