package topo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLayerString(t *testing.T) {
	tests := []struct {
		l    Layer
		want string
	}{
		{LayerRSW, "RSW"},
		{LayerSSW, "SSW"},
		{LayerFAUU, "FAUU"},
		{LayerDMAG, "DMAG"},
		{Layer(99), "Layer(99)"},
	}
	for _, tt := range tests {
		if got := tt.l.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.l), got, tt.want)
		}
	}
}

func TestLayerAltitudeOrdering(t *testing.T) {
	// The production stack must be strictly ordered bottom to top.
	stack := []Layer{LayerRSW, LayerFSW, LayerSSW, LayerFADU, LayerFAUU, LayerEB}
	for i := 1; i < len(stack); i++ {
		if stack[i].Altitude() <= stack[i-1].Altitude() {
			t.Errorf("altitude(%v)=%d not above altitude(%v)=%d",
				stack[i], stack[i].Altitude(), stack[i-1], stack[i-1].Altitude())
		}
	}
	// Legacy layers map into the stack.
	if LayerFAv1.Altitude() != LayerFADU.Altitude() {
		t.Error("FAv1 should sit at FADU altitude")
	}
	if LayerEdge.Altitude() != LayerFAUU.Altitude() {
		t.Error("Edge should sit at FAUU altitude")
	}
}

func TestAddDeviceAssignsUniqueASNs(t *testing.T) {
	tp := New()
	a := tp.AddDevice(Device{ID: "a", Layer: LayerGeneric})
	b := tp.AddDevice(Device{ID: "b", Layer: LayerGeneric})
	if a.ASN == 0 || b.ASN == 0 || a.ASN == b.ASN {
		t.Fatalf("ASNs not unique/nonzero: %d %d", a.ASN, b.ASN)
	}
}

func TestAddDeviceDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate device")
		}
	}()
	tp := New()
	tp.AddDevice(Device{ID: "x"})
	tp.AddDevice(Device{ID: "x"})
}

func TestAddLinkUnknownEndpointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown endpoint")
		}
	}()
	tp := New()
	tp.AddDevice(Device{ID: "a"})
	tp.AddLink("a", "nope", 100)
}

func TestNeighborsAndParallelLinks(t *testing.T) {
	tp := New()
	tp.AddDevice(Device{ID: "a"})
	tp.AddDevice(Device{ID: "b"})
	tp.AddDevice(Device{ID: "c"})
	tp.AddLink("a", "b", 100)
	tp.AddLink("a", "b", 100) // parallel
	tp.AddLink("a", "c", 100)
	n := tp.Neighbors("a")
	if len(n) != 3 {
		t.Fatalf("Neighbors(a) = %v, want 3 entries (multiplicity)", n)
	}
	if n[0] != "b" || n[1] != "b" || n[2] != "c" {
		t.Fatalf("Neighbors(a) = %v, want [b b c]", n)
	}
	if got := len(tp.LinksOf("a")); got != 3 {
		t.Fatalf("LinksOf(a) = %d links, want 3", got)
	}
}

func TestRemoveLinksAndDevice(t *testing.T) {
	tp := New()
	tp.AddDevice(Device{ID: "a"})
	tp.AddDevice(Device{ID: "b"})
	tp.AddDevice(Device{ID: "c"})
	tp.AddLink("a", "b", 100)
	tp.AddLink("b", "a", 100)
	tp.AddLink("a", "c", 100)
	if got := tp.RemoveLinks("a", "b"); got != 2 {
		t.Fatalf("RemoveLinks removed %d, want 2 (both orientations)", got)
	}
	if got := tp.NumLinks(); got != 1 {
		t.Fatalf("NumLinks = %d, want 1", got)
	}
	tp.RemoveDevice("c")
	if tp.Device("c") != nil {
		t.Fatal("device c still present")
	}
	if got := tp.NumLinks(); got != 0 {
		t.Fatalf("NumLinks after RemoveDevice = %d, want 0", got)
	}
	if got := len(tp.Neighbors("a")); got != 0 {
		t.Fatalf("Neighbors(a) = %d, want 0", got)
	}
	tp.RemoveDevice("missing") // must be a no-op
}

func TestValidate(t *testing.T) {
	tp := New()
	tp.AddDevice(Device{ID: "a"})
	tp.AddDevice(Device{ID: "b"})
	tp.AddLink("a", "b", 100)
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	// Duplicate ASN.
	tp2 := New()
	tp2.AddDevice(Device{ID: "a", ASN: 7})
	tp2.AddDevice(Device{ID: "b", ASN: 7})
	if err := tp2.Validate(); err == nil || !strings.Contains(err.Error(), "ASN") {
		t.Fatalf("Validate dup-ASN = %v, want ASN error", err)
	}
	// Bad capacity by direct mutation.
	tp3 := New()
	tp3.AddDevice(Device{ID: "a"})
	tp3.AddDevice(Device{ID: "b"})
	tp3.AddLink("a", "b", 100)
	tp3.links[0].CapacityGbps = 0
	if err := tp3.Validate(); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("Validate zero-capacity = %v, want capacity error", err)
	}
	// Self loop.
	tp4 := New()
	tp4.AddDevice(Device{ID: "a"})
	tp4.AddDevice(Device{ID: "b"})
	tp4.AddLink("a", "b", 100)
	tp4.links[0].B = "a"
	if err := tp4.Validate(); err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("Validate self-loop = %v, want self-loop error", err)
	}
}

func TestDevicesSorted(t *testing.T) {
	tp := New()
	tp.AddDevice(Device{ID: "z"})
	tp.AddDevice(Device{ID: "a"})
	tp.AddDevice(Device{ID: "m"})
	devs := tp.Devices()
	for i := 1; i < len(devs); i++ {
		if devs[i].ID < devs[i-1].ID {
			t.Fatalf("Devices not sorted: %v", devs)
		}
	}
}

func TestByLayerAndLayers(t *testing.T) {
	tp := New()
	tp.AddDevice(Device{ID: "s1", Layer: LayerSSW})
	tp.AddDevice(Device{ID: "s0", Layer: LayerSSW})
	tp.AddDevice(Device{ID: "e0", Layer: LayerEB})
	tp.AddDevice(Device{ID: "r0", Layer: LayerRSW})
	ssws := tp.ByLayer(LayerSSW)
	if len(ssws) != 2 || ssws[0].ID != "s0" {
		t.Fatalf("ByLayer(SSW) = %v", ssws)
	}
	layers := tp.Layers()
	want := []Layer{LayerRSW, LayerSSW, LayerEB}
	if len(layers) != len(want) {
		t.Fatalf("Layers = %v, want %v", layers, want)
	}
	for i := range want {
		if layers[i] != want[i] {
			t.Fatalf("Layers = %v, want %v", layers, want)
		}
	}
}

func TestBuildFabricStructure(t *testing.T) {
	p := FabricParams{Pods: 2, RSWsPerPod: 3, FSWsPerPod: 4, Planes: 4,
		SSWsPerPlane: 2, Grids: 2, FADUsPerGrid: 2, FAUUsPerGrid: 2, EBs: 2}
	tp := BuildFabric(p)
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(tp.ByLayer(LayerRSW)); got != 6 {
		t.Errorf("RSWs = %d, want 6", got)
	}
	if got := len(tp.ByLayer(LayerFSW)); got != 8 {
		t.Errorf("FSWs = %d, want 8", got)
	}
	if got := len(tp.ByLayer(LayerSSW)); got != 8 {
		t.Errorf("SSWs = %d, want 8", got)
	}
	// Every RSW connects to all 4 FSWs of its pod.
	if got := len(tp.Neighbors(RSWID(0, 0))); got != 4 {
		t.Errorf("RSW neighbors = %d, want 4", got)
	}
	// FSW of plane i connects to its pod's RSWs plus plane i SSWs.
	if got := len(tp.Neighbors(FSWID(0, 1))); got != 3+2 {
		t.Errorf("FSW neighbors = %d, want 5", got)
	}
	// SSW j connects to plane FSWs (2 pods) and one FADU per grid.
	if got := len(tp.Neighbors(SSWID(1, 0))); got != 2+2 {
		t.Errorf("SSW neighbors = %d, want 4", got)
	}
	// Same-number wiring: SSW index 0 must connect to FADU 0 in each grid.
	for _, nb := range tp.Neighbors(SSWID(0, 0)) {
		d := tp.Device(nb)
		if d.Layer == LayerFADU && d.Index != 0 {
			t.Errorf("SSW-0 wired to FADU-%d, want only FADU-0", d.Index)
		}
	}
}

func TestBuildFabricMismatchedPlanesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when FSWsPerPod != Planes")
		}
	}()
	BuildFabric(FabricParams{FSWsPerPod: 2, Planes: 4})
}

func TestBuildFabricDefaults(t *testing.T) {
	tp := BuildFabric(FabricParams{})
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tp.NumDevices() == 0 || tp.NumLinks() == 0 {
		t.Fatal("default fabric is empty")
	}
}

func TestBuildExpansion(t *testing.T) {
	e := BuildExpansion(ExpansionParams{SSWs: 4, FAv1s: 4, Edges: 4, FAv2s: 2, Backbones: 2})
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// FAv2s exist but are unlinked.
	for i := 0; i < 2; i++ {
		if got := len(e.Neighbors(FAv2ID(i))); got != 0 {
			t.Errorf("FAv2-%d has %d links before activation", i, got)
		}
	}
	// SSW sees all FAv1s.
	if got := len(e.Neighbors(SSWID(0, 0))); got != 4 {
		t.Errorf("SSW neighbors = %d, want 4", got)
	}
	e.ActivateFAv2(0)
	if got := len(e.Neighbors(FAv2ID(0))); got != 4+2 {
		t.Errorf("activated FAv2 neighbors = %d, want 6", got)
	}
	// Activation creates the shorter SSW->FAv2->EB path.
	found := false
	for _, nb := range e.Neighbors(SSWID(0, 0)) {
		if nb == FAv2ID(0) {
			found = true
		}
	}
	if !found {
		t.Error("SSW not wired to activated FAv2")
	}
	e.RemoveOldLayers()
	if len(e.ByLayer(LayerFAv1)) != 0 || len(e.ByLayer(LayerEdge)) != 0 {
		t.Error("old layers not removed")
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate after removal: %v", err)
	}
}

func TestBuildMeshWiring(t *testing.T) {
	tp := BuildMesh(MeshParams{Planes: 2, Grids: 3, PerGroup: 4, FSWsPerPlane: 2, Backbones: 2})
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Upward, SSW-n connects only to FADU-n (same number) in every grid;
	// downward it sees its plane's FSWs.
	fadus, fsws := 0, 0
	for _, nb := range tp.Neighbors(SSWID(0, 2)) {
		d := tp.Device(nb)
		switch d.Layer {
		case LayerFADU:
			fadus++
			if d.Index != 2 {
				t.Errorf("SSW-2 wired to FADU-%d", d.Index)
			}
		case LayerFSW:
			fsws++
			if d.Plane != 0 {
				t.Errorf("SSW plane 0 wired to FSW of plane %d", d.Plane)
			}
		default:
			t.Fatalf("SSW neighbor %v has layer %v", nb, d.Layer)
		}
	}
	if fadus != 3 || fsws != 2 {
		t.Errorf("SSW sees %d FADUs and %d FSWs, want 3 and 2", fadus, fsws)
	}
	// FSW reaches all SSW numbers of its plane.
	if got := len(tp.Neighbors(FSWID(0, 0))); got != 4 {
		t.Errorf("FSW neighbors = %d, want 4", got)
	}
	// FADU-n sees one SSW-n per plane plus backbones.
	if got := len(tp.Neighbors(FADUID(0, 1))); got != 2+2 {
		t.Errorf("FADU neighbors = %d, want 4", got)
	}
}

func TestBuildFig5Sessions(t *testing.T) {
	tp := BuildFig5(8, 4, 1, 2, 100)
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// DU must have 8 sessions toward the 4 UUs (2 per pair).
	if got := len(tp.LinksOf(DUID(0))); got != 8 {
		t.Errorf("DU sessions = %d, want 8", got)
	}
	// Each UU: 8 EB links + 2 DU links.
	if got := len(tp.LinksOf(UUID(0))); got != 10 {
		t.Errorf("UU links = %d, want 10", got)
	}
}

func TestBuildFig9(t *testing.T) {
	tp := BuildFig9(100)
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(tp.Neighbors(GenericID(6))); got != 4 {
		t.Errorf("R6 neighbors = %d, want 4", got)
	}
	if got := len(tp.Neighbors(GenericID(1))); got != 2 {
		t.Errorf("R1 neighbors = %d, want 2", got)
	}
}

func TestBuildFig10(t *testing.T) {
	tp := BuildFig10(Fig10Params{FSWs: 2, SSWs: 2, FAs: 2})
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Each FA has SSW links + direct EB + DMAG.
	if got := len(tp.Neighbors(FAID(0))); got != 2+1+1 {
		t.Errorf("FA neighbors = %d, want 4", got)
	}
	// DMAG connects FAs and EB.
	if got := len(tp.Neighbors(DMAGID(0))); got != 3 {
		t.Errorf("DMAG neighbors = %d, want 3", got)
	}
}

func TestFabricASNsUniqueProperty(t *testing.T) {
	f := func(pods, planes uint8) bool {
		p := FabricParams{
			Pods:   int(pods%3) + 1,
			Planes: int(planes%3) + 1,
		}
		p.FSWsPerPod = p.Planes
		tp := BuildFabric(p)
		return tp.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	orig := BuildFabric(FabricParams{})
	data, err := orig.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDevices() != orig.NumDevices() || got.NumLinks() != orig.NumLinks() {
		t.Fatalf("round trip: %d/%d devices, %d/%d links",
			got.NumDevices(), orig.NumDevices(), got.NumLinks(), orig.NumLinks())
	}
	// ASNs preserved exactly.
	for _, d := range orig.Devices() {
		gd := got.Device(d.ID)
		if gd == nil || gd.ASN != d.ASN || gd.Layer != d.Layer {
			t.Fatalf("device %s mismatch: %+v vs %+v", d.ID, gd, d)
		}
	}
	// The allocator resumes above imported ASNs.
	added := got.AddDevice(Device{ID: "extra"})
	for _, d := range got.Devices() {
		if d.ID != "extra" && d.ASN == added.ASN {
			t.Fatalf("imported topology reallocated ASN %d", added.ASN)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestImportJSONErrors(t *testing.T) {
	bad := []string{
		`{garbage`,
		`{"devices":[{"ID":""}]}`,
		`{"devices":[{"ID":"a","ASN":1},{"ID":"a","ASN":2}]}`,
		`{"devices":[{"ID":"a","ASN":1}],"links":[{"A":"a","B":"ghost","CapacityGbps":100}]}`,
		`{"devices":[{"ID":"a","ASN":1},{"ID":"b","ASN":1}]}`, // dup ASN -> Validate fails
	}
	for i, doc := range bad {
		if _, err := ImportJSON([]byte(doc)); err == nil {
			t.Errorf("document %d accepted", i)
		}
	}
}
