package te

import (
	"math"
	"testing"
	"testing/quick"

	"centralium/internal/core"
)

func symmetric(n int, cap float64) []Path {
	out := make([]Path, n)
	for i := range out {
		out[i] = Path{ID: string(rune('a' + i)), CapacityGbps: cap}
	}
	return out
}

func TestECMPWeights(t *testing.T) {
	paths := symmetric(4, 100)
	paths[2].CapacityGbps = 0 // down
	w := ECMPWeights(paths)
	want := []int{1, 1, 0, 1}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("ECMPWeights = %v, want %v", w, want)
		}
	}
}

func TestIdealFractionsSumToOne(t *testing.T) {
	paths := []Path{{"a", 300}, {"b", 100}}
	f := IdealFractions(paths)
	if math.Abs(f[0]-0.75) > 1e-9 || math.Abs(f[1]-0.25) > 1e-9 {
		t.Fatalf("fractions = %v", f)
	}
	if got := IdealFractions(symmetric(2, 0)); got[0] != 0 || got[1] != 0 {
		t.Fatalf("dead paths fractions = %v", got)
	}
}

func TestWeightsProportional(t *testing.T) {
	paths := []Path{{"a", 400}, {"b", 100}, {"c", 0}}
	w := Weights(paths, 64)
	if w[2] != 0 {
		t.Fatalf("dead path weight = %d", w[2])
	}
	if w[0] != 4*w[1] {
		t.Fatalf("weights = %v, want 4:1", w)
	}
}

func TestWeightsMinimumOne(t *testing.T) {
	// A tiny-capacity path must keep weight >= 1 to stay in the group.
	paths := []Path{{"big", 10000}, {"small", 1}}
	w := Weights(paths, 16)
	if w[1] < 1 {
		t.Fatalf("small path weight = %d, want >= 1", w[1])
	}
}

func TestWeightsGCDReduced(t *testing.T) {
	paths := []Path{{"a", 200}, {"b", 200}}
	w := Weights(paths, 64)
	if w[0] != 1 || w[1] != 1 {
		t.Fatalf("weights = %v, want reduced [1 1]", w)
	}
}

func TestEffectiveCapacitySymmetric(t *testing.T) {
	paths := symmetric(4, 100)
	// Symmetric: ECMP is already optimal.
	if got := EffectiveCapacity(paths, ECMPWeights(paths)); math.Abs(got-400) > 1e-9 {
		t.Fatalf("ECMP effective = %v, want 400", got)
	}
	if got := EffectiveCapacityFractions(paths, IdealFractions(paths)); math.Abs(got-400) > 1e-9 {
		t.Fatalf("ideal effective = %v, want 400", got)
	}
}

func TestEffectiveCapacityAsymmetric(t *testing.T) {
	// Maintenance halves one path: ECMP is limited by the weakest member,
	// TE recovers nearly all capacity — the Figure 13 relationship.
	paths := []Path{{"a", 100}, {"b", 100}, {"c", 100}, {"d", 50}}
	total := TotalCapacity(paths) // 350

	ecmp := EffectiveCapacity(paths, ECMPWeights(paths))
	if math.Abs(ecmp-200) > 1e-9 { // 4 * min(100,50)
		t.Fatalf("ECMP effective = %v, want 200", ecmp)
	}
	ideal := EffectiveCapacityFractions(paths, IdealFractions(paths))
	if math.Abs(ideal-total) > 1e-9 {
		t.Fatalf("ideal effective = %v, want %v", ideal, total)
	}
	teCap := EffectiveCapacity(paths, Weights(paths, 64))
	if teCap <= ecmp {
		t.Fatalf("TE (%v) must beat ECMP (%v)", teCap, ecmp)
	}
	if teCap > ideal+1e-9 {
		t.Fatalf("TE (%v) cannot beat ideal (%v)", teCap, ideal)
	}
	if teCap < 0.95*ideal {
		t.Fatalf("TE (%v) should be near-optimal vs ideal (%v)", teCap, ideal)
	}
}

func TestEffectiveCapacityDegenerate(t *testing.T) {
	paths := symmetric(2, 100)
	if got := EffectiveCapacity(paths, []int{0, 0}); got != 0 {
		t.Fatalf("no weights effective = %v", got)
	}
	// Weight on a dead path: zero safe capacity.
	paths[1].CapacityGbps = 0
	if got := EffectiveCapacity(paths, []int{1, 1}); got != 0 {
		t.Fatalf("dead-path weight effective = %v", got)
	}
	if got := EffectiveCapacityFractions(paths, []float64{0.5, 0.5}); got != 0 {
		t.Fatalf("dead-path fraction effective = %v", got)
	}
	if got := EffectiveCapacityFractions(paths, []float64{0, 0}); got != 0 {
		t.Fatalf("zero fractions effective = %v", got)
	}
}

func TestMaxUtilization(t *testing.T) {
	paths := []Path{{"a", 100}, {"b", 50}}
	w := []int{2, 1}
	// demand 120 -> a carries 80 (0.8), b carries 40 (0.8).
	if got := MaxUtilization(paths, w, 120); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("MaxUtilization = %v, want 0.8", got)
	}
	if got := MaxUtilization(paths, []int{0, 0}, 10); !math.IsInf(got, 1) {
		t.Fatalf("no-weight utilization = %v, want +Inf", got)
	}
	if got := MaxUtilization(paths, []int{0, 0}, 0); got != 0 {
		t.Fatalf("no-demand utilization = %v, want 0", got)
	}
	dead := []Path{{"a", 0}}
	if got := MaxUtilization(dead, []int{1}, 10); !math.IsInf(got, 1) {
		t.Fatalf("dead-path utilization = %v, want +Inf", got)
	}
}

func TestTEOrderingProperty(t *testing.T) {
	// Property: for any capacity vector, ECMP <= TE <= ideal (within
	// floating tolerance).
	f := func(caps [6]uint16) bool {
		paths := make([]Path, 0, len(caps))
		for i, c := range caps {
			paths = append(paths, Path{ID: string(rune('a' + i)), CapacityGbps: float64(c%400) + 1})
		}
		ecmp := EffectiveCapacity(paths, ECMPWeights(paths))
		teCap := EffectiveCapacity(paths, Weights(paths, 64))
		ideal := EffectiveCapacityFractions(paths, IdealFractions(paths))
		return ecmp <= teCap+1e-6 && teCap <= ideal+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuildRouteAttributeRPA(t *testing.T) {
	paths := []Path{{"eb.1", 100}, {"eb.0", 300}}
	w := Weights(paths, 64)
	st := BuildRouteAttributeRPA("te", core.Destination{Community: "TE"}, paths, w, 12345)
	if st.ExpiresAt != 12345 || st.Name != "te" {
		t.Fatalf("statement = %+v", st)
	}
	if len(st.NextHopWeights) != 2 {
		t.Fatalf("weights = %+v", st.NextHopWeights)
	}
	// Sorted by path ID: eb.0 first with the larger weight.
	if st.NextHopWeights[0].Signature.NextHopRegex != "^eb\\.0$" {
		t.Fatalf("signature = %q", st.NextHopWeights[0].Signature.NextHopRegex)
	}
	ratio := float64(st.NextHopWeights[0].Weight) / float64(st.NextHopWeights[1].Weight)
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("weights = %+v, want ~3:1", st.NextHopWeights)
	}
	// The statement must pass core validation.
	cfg := &core.Config{RouteAttribute: []core.RouteAttributeStatement{st}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("generated statement invalid: %v", err)
	}
}
