// Package te implements the centralized traffic-engineering algorithm of
// Section 6.4: given the (possibly maintenance-degraded) capacities of the
// parallel paths between the DCN and the backbone, it computes WCMP weights
// that minimize the maximum link utilization, and compares against the ECMP
// and ideal (fractional) WCMP baselines of Figure 13. Weights are emitted
// as Route Attribute RPA statements for deployment through the controller.
package te

import (
	"fmt"
	"math"
	"regexp"
	"sort"

	"centralium/internal/core"
)

// Path is one parallel forwarding path with its current usable capacity.
// Zero capacity means the path is down (drained for maintenance).
type Path struct {
	ID           string // next-hop device name
	CapacityGbps float64
}

// TotalCapacity sums usable capacities.
func TotalCapacity(paths []Path) float64 {
	sum := 0.0
	for _, p := range paths {
		if p.CapacityGbps > 0 {
			sum += p.CapacityGbps
		}
	}
	return sum
}

// ECMPWeights returns equal weights over all live paths — the distributed
// baseline. Dead paths get weight 0.
func ECMPWeights(paths []Path) []int {
	w := make([]int, len(paths))
	for i, p := range paths {
		if p.CapacityGbps > 0 {
			w[i] = 1
		}
	}
	return w
}

// IdealFractions returns the optimal fractional split (proportional to
// capacity), the "ideal WCMP" upper bound of Figure 13.
func IdealFractions(paths []Path) []float64 {
	total := TotalCapacity(paths)
	f := make([]float64, len(paths))
	if total <= 0 {
		return f
	}
	for i, p := range paths {
		if p.CapacityGbps > 0 {
			f[i] = p.CapacityGbps / total
		}
	}
	return f
}

// DefaultMaxWeight bounds integer WCMP weights; hardware replicates group
// members by weight, so the member-table footprint caps the precision.
const DefaultMaxWeight = 64

// Weights computes Centralium's TE weights: capacity-proportional integers
// quantized so the largest weight is at most maxWeight (values <= 0 get
// DefaultMaxWeight). Every live path keeps at least weight 1 so it remains
// in the group.
func Weights(paths []Path, maxWeight int) []int {
	if maxWeight <= 0 {
		maxWeight = DefaultMaxWeight
	}
	w := make([]int, len(paths))
	maxCap := 0.0
	for _, p := range paths {
		if p.CapacityGbps > maxCap {
			maxCap = p.CapacityGbps
		}
	}
	if maxCap <= 0 {
		return w
	}
	for i, p := range paths {
		if p.CapacityGbps <= 0 {
			continue
		}
		scaled := int(math.Round(p.CapacityGbps / maxCap * float64(maxWeight)))
		if scaled < 1 {
			scaled = 1
		}
		w[i] = scaled
	}
	return reduceByGCD(w)
}

func reduceByGCD(w []int) []int {
	g := 0
	for _, v := range w {
		g = gcd(g, v)
	}
	if g <= 1 {
		return w
	}
	out := make([]int, len(w))
	for i, v := range w {
		out[i] = v / g
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// EffectiveCapacity returns the largest total demand the weight assignment
// can carry with no path exceeding its capacity: min over live paths of
// c_i * W / w_i. It is the "effective network capacity" metric of Figure 13
// ("the amount of traffic that can be handled without congestion").
func EffectiveCapacity(paths []Path, weights []int) float64 {
	totalW := 0
	for i, w := range weights {
		if w > 0 && paths[i].CapacityGbps > 0 {
			totalW += w
		}
	}
	if totalW == 0 {
		return 0
	}
	eff := math.Inf(1)
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if paths[i].CapacityGbps <= 0 {
			return 0 // weight on a dead path: nothing is deliverable safely
		}
		if cap := paths[i].CapacityGbps * float64(totalW) / float64(w); cap < eff {
			eff = cap
		}
	}
	return eff
}

// EffectiveCapacityFractions is EffectiveCapacity for a fractional split.
func EffectiveCapacityFractions(paths []Path, fractions []float64) float64 {
	eff := math.Inf(1)
	any := false
	for i, f := range fractions {
		if f <= 0 {
			continue
		}
		if paths[i].CapacityGbps <= 0 {
			return 0
		}
		any = true
		if cap := paths[i].CapacityGbps / f; cap < eff {
			eff = cap
		}
	}
	if !any {
		return 0
	}
	return eff
}

// MaxUtilization returns the highest per-path utilization when `demand` is
// split by the weights. Infinite if weight sits on a dead path.
func MaxUtilization(paths []Path, weights []int, demand float64) float64 {
	totalW := 0
	for _, w := range weights {
		if w > 0 {
			totalW += w
		}
	}
	if totalW == 0 {
		if demand > 0 {
			return math.Inf(1)
		}
		return 0
	}
	max := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		load := demand * float64(w) / float64(totalW)
		if paths[i].CapacityGbps <= 0 {
			return math.Inf(1)
		}
		if u := load / paths[i].CapacityGbps; u > max {
			max = u
		}
	}
	return max
}

// BuildRouteAttributeRPA converts a TE weight assignment into the Route
// Attribute RPA statement the controller deploys (Section 4.3: "operators
// can update prescribed weights using an RPA in anticipation of upcoming
// maintenance"). Each path gets an exact-match next-hop signature.
func BuildRouteAttributeRPA(name string, dest core.Destination, paths []Path, weights []int, expiresAt int64) core.RouteAttributeStatement {
	st := core.RouteAttributeStatement{
		Name:        name,
		Destination: dest,
		ExpiresAt:   expiresAt,
	}
	idx := make([]int, len(paths))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return paths[idx[a]].ID < paths[idx[b]].ID })
	for _, i := range idx {
		st.NextHopWeights = append(st.NextHopWeights, core.NextHopWeight{
			Signature: core.PathSignature{
				NextHopRegex: fmt.Sprintf("^%s$", regexp.QuoteMeta(paths[i].ID)),
			},
			Weight: weights[i],
		})
	}
	return st
}
