package fib

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"
)

// Tests for the Touch fast path the incremental decision engine uses in
// place of a same-group Install, and for the churn/peak counters under
// Touch-heavy write sequences: a Touch must be indistinguishable — stats,
// exported state, warm flags, observer silence — from the Install it
// replaces, and must never double-count NHG churn or move the occupancy
// peak.

var (
	fibP1 = netip.MustParsePrefix("10.0.0.0/8")
	fibP2 = netip.MustParsePrefix("10.1.0.0/16")

	hopsAB = []NextHop{{ID: "a", Weight: 1}, {ID: "b", Weight: 1}}
	hopsAC = []NextHop{{ID: "a", Weight: 2}, {ID: "c", Weight: 1}}
)

// TestTouchMatchesSameKeyInstall runs the same write script through two
// tables — one reinstalling the identical hop set, one Touching instead —
// and requires identical stats and exported state at every step.
func TestTouchMatchesSameKeyInstall(t *testing.T) {
	inst := New(0)
	touch := New(0)
	step := func(name string, fi, ft func()) {
		t.Helper()
		fi()
		ft()
		if a, b := inst.Stats(), touch.Stats(); a != b {
			t.Fatalf("%s: stats diverged:\n  install: %+v\n  touch:   %+v", name, a, b)
		}
		if a, b := fmt.Sprintf("%+v", inst.ExportState()), fmt.Sprintf("%+v", touch.ExportState()); a != b {
			t.Fatalf("%s: exported state diverged:\n  install: %s\n  touch:   %s", name, a, b)
		}
	}
	step("seed", func() { inst.Install(fibP1, hopsAB); inst.Install(fibP2, hopsAC) },
		func() { touch.Install(fibP1, hopsAB); touch.Install(fibP2, hopsAC) })
	step("same-key rewrite", func() { inst.Install(fibP1, hopsAB) }, func() { touch.Touch(fibP1) })
	step("warm then rewrite", func() { inst.MarkWarm(fibP2); inst.Install(fibP2, hopsAC) },
		func() { touch.MarkWarm(fibP2); touch.Touch(fibP2) })
	step("rewrite again", func() { inst.Install(fibP1, hopsAB) }, func() { touch.Touch(fibP1) })
	step("real change still works", func() { inst.Install(fibP1, hopsAC) }, func() { touch.Install(fibP1, hopsAC) })
}

// TestTouchDoesNotNotify pins the observer contract: Install's same-key
// early return fires before the observer, so Touch must be silent too.
func TestTouchDoesNotNotify(t *testing.T) {
	tbl := New(0)
	tbl.Install(fibP1, hopsAB)
	var events []WriteEvent
	tbl.SetObserver(func(ev WriteEvent) { events = append(events, ev) })
	tbl.Install(fibP1, hopsAB) // same-key: silent
	tbl.Touch(fibP1)           // must match
	if len(events) != 0 {
		t.Fatalf("same-key rewrites notified the observer: %+v", events)
	}
	tbl.Install(fibP1, hopsAC) // real change: audible
	if len(events) != 1 {
		t.Fatalf("real install produced %d events, want 1", len(events))
	}
}

// TestTouchClearsWarm: a warm entry that the decision process re-selects
// stops being "warm only" — Touch must clear the flag exactly as a
// reinstall would.
func TestTouchClearsWarm(t *testing.T) {
	tbl := New(0)
	tbl.Install(fibP1, hopsAB)
	tbl.MarkWarm(fibP1)
	if !tbl.IsWarm(fibP1) {
		t.Fatal("MarkWarm did not flag the entry")
	}
	tbl.Touch(fibP1)
	if tbl.IsWarm(fibP1) {
		t.Fatal("Touch left the warm flag set")
	}
	if tbl.Lookup(fibP1) == nil {
		t.Fatal("Touch removed the entry")
	}
}

// TestChurnPeakNoDoubleCountUnderTouch models an incremental convergence
// window: a burst of recomputes where most runs re-select the same hop
// set. GroupChurn and PeakGroups must reflect only the distinct NHG
// objects ever created — Touches add writes, never churn or peak — and
// must equal what the same route history costs with full reinstalls.
func TestChurnPeakNoDoubleCountUnderTouch(t *testing.T) {
	full := New(4)
	incr := New(4)
	prefixes := make([]netip.Prefix, 6)
	for i := range prefixes {
		prefixes[i] = netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i))
	}
	hopSets := [][]NextHop{hopsAB, hopsAC, {{ID: "d", Weight: 1}}}

	// Seed both with the same entries, then run 50 "recompute rounds"
	// where each prefix re-selects its existing set (a Touch on the
	// incremental table) except every 7th round flips one prefix to a
	// different set (a real Install on both).
	for i, p := range prefixes {
		full.Install(p, hopSets[i%len(hopSets)])
		incr.Install(p, hopSets[i%len(hopSets)])
	}
	current := make([]int, len(prefixes))
	for i := range current {
		current[i] = i % len(hopSets)
	}
	for round := 1; round <= 50; round++ {
		for i, p := range prefixes {
			if round%7 == 0 && i == round%len(prefixes) {
				current[i] = (current[i] + 1) % len(hopSets)
				full.Install(p, hopSets[current[i]])
				incr.Install(p, hopSets[current[i]])
				continue
			}
			full.Install(p, hopSets[current[i]])
			incr.Touch(p)
		}
	}
	fs, is := full.Stats(), incr.Stats()
	if fs != is {
		t.Fatalf("stats diverged after churn window:\n  full: %+v\n  incr: %+v", fs, is)
	}
	// The whole history only ever used len(hopSets) distinct groups, and
	// at most that many concurrently: churn/peak must not scale with the
	// 300+ writes.
	if is.GroupChurn > len(hopSets)+len(prefixes) {
		t.Errorf("GroupChurn = %d, scaled with writes instead of distinct groups", is.GroupChurn)
	}
	if is.PeakGroups > len(hopSets) {
		t.Errorf("PeakGroups = %d, want <= %d", is.PeakGroups, len(hopSets))
	}
	if is.Writes != fs.Writes || is.Writes < 300 {
		t.Errorf("Writes = %d (full %d), want equal and >= 300", is.Writes, fs.Writes)
	}
}

// TestTouchRestoreRoundTrip: a table whose counters were advanced by
// Touch exports and restores like any other — the codec carries counters
// verbatim.
func TestTouchRestoreRoundTrip(t *testing.T) {
	tbl := New(8)
	tbl.Install(fibP1, hopsAB)
	tbl.MarkWarm(fibP1)
	tbl.Install(fibP2, hopsAC)
	tbl.Touch(fibP2)
	st := tbl.ExportState()
	back := NewFromState(st)
	if !reflect.DeepEqual(back.ExportState(), st) {
		t.Fatalf("round trip changed state:\n  before: %+v\n  after:  %+v", st, back.ExportState())
	}
	if a, b := back.Stats(), tbl.Stats(); a != b {
		t.Fatalf("restored stats %+v != original %+v", a, b)
	}
	if !back.IsWarm(fibP1) || back.IsWarm(fibP2) {
		t.Fatal("warm flags lost in round trip")
	}
}
