// Package fib models a switch's forwarding information base and, crucially,
// its next-hop-group (NHG) table: the on-chip structure that Section 3.4
// shows can be exhausted by transient convergence states. Prefixes mapping
// to the same weighted next-hop set share one NHG object, exactly as in
// merchant-silicon forwarding pipelines; the table tracks live occupancy,
// the peak reached, and overflow events against a hardware capacity limit.
package fib

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// NextHop is one weighted forwarding adjacency. ID is a session or device
// identifier in the emulation (an interface/IP in real hardware).
type NextHop struct {
	ID     string
	Weight int
}

// DefaultGroupLimit approximates the NHG capacity of the paper's DU
// hardware class; Section 3.4 notes 4^8 = 65536 possible transient groups
// "far exceeds the maximum number supported".
const DefaultGroupLimit = 4096

// group is one reference-counted NHG object.
type group struct {
	key  string
	hops []NextHop
	refs int
}

// Table is the FIB of one switch. The zero value is not usable; construct
// with New. Not safe for concurrent use (a switch's FIB writer is a single
// pipeline).
type Table struct {
	limit   int
	entries map[netip.Prefix]*group
	groups  map[string]*group

	peakGroups  int
	overflows   int
	groupChurn  int                   // total NHG object creations
	writes      int                   // total prefix installs/updates
	warmEntries map[netip.Prefix]bool // kept despite withdrawal (KeepFibWarm)

	observer func(WriteEvent) // optional write notification (telemetry tap)
}

// WriteEvent describes one forwarding-table write for an observer: which
// prefix changed and the table occupancy after the write. The package has
// no telemetry dependency; the speaker adapts these into tap events.
type WriteEvent struct {
	Prefix  netip.Prefix
	Removed bool // entry deleted (withdrawal or empty install)
	Warm    bool // entry flagged warm (forwarding kept despite withdrawal)

	Entries    int // prefixes installed after the write
	Groups     int // live NHG objects after the write
	Limit      int // hardware NHG capacity
	GroupChurn int // cumulative NHG creations
	Overflows  int // cumulative overflow events
}

// SetObserver installs a callback invoked after every mutating write
// (Install, Remove, MarkWarm). A nil observer disables notification.
func (t *Table) SetObserver(fn func(WriteEvent)) { t.observer = fn }

func (t *Table) notify(p netip.Prefix, removed, warm bool) {
	if t.observer == nil {
		return
	}
	t.observer(WriteEvent{
		Prefix:     p,
		Removed:    removed,
		Warm:       warm,
		Entries:    len(t.entries),
		Groups:     len(t.groups),
		Limit:      t.limit,
		GroupChurn: t.groupChurn,
		Overflows:  t.overflows,
	})
}

// New returns an empty FIB with the given NHG capacity (values <= 0 get
// DefaultGroupLimit).
func New(groupLimit int) *Table {
	if groupLimit <= 0 {
		groupLimit = DefaultGroupLimit
	}
	return &Table{
		limit:       groupLimit,
		entries:     make(map[netip.Prefix]*group),
		groups:      make(map[string]*group),
		warmEntries: make(map[netip.Prefix]bool),
	}
}

// groupKey canonicalizes a next-hop set: sorted by ID, weights normalized by
// their GCD so {a:2,b:2} and {a:1,b:1} share one group, as hardware ECMP
// groups do.
func groupKey(hops []NextHop) string {
	sorted := append([]NextHop(nil), hops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	g := 0
	for _, h := range sorted {
		g = gcd(g, h.Weight)
	}
	if g == 0 {
		g = 1
	}
	var b strings.Builder
	for _, h := range sorted {
		fmt.Fprintf(&b, "%s=%d;", h.ID, h.Weight/g)
	}
	return b.String()
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Install points the prefix at the weighted next-hop set, creating or
// sharing an NHG object. Installing an empty set removes the entry.
func (t *Table) Install(p netip.Prefix, hops []NextHop) {
	t.writes++
	delete(t.warmEntries, p)
	if len(hops) == 0 {
		t.Remove(p)
		return
	}
	key := groupKey(hops)
	if old := t.entries[p]; old != nil {
		if old.key == key {
			return // no-op rewrite
		}
		t.release(old)
	}
	g := t.groups[key]
	if g == nil {
		g = &group{key: key, hops: normalizeHops(hops)}
		t.groups[key] = g
		t.groupChurn++
		if len(t.groups) > t.limit {
			t.overflows++
		}
		if len(t.groups) > t.peakGroups {
			t.peakGroups = len(t.groups)
		}
	}
	g.refs++
	t.entries[p] = g
	t.notify(p, false, false)
}

func normalizeHops(hops []NextHop) []NextHop {
	sorted := append([]NextHop(nil), hops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	g := 0
	for _, h := range sorted {
		g = gcd(g, h.Weight)
	}
	if g == 0 {
		g = 1
	}
	for i := range sorted {
		sorted[i].Weight /= g
	}
	return sorted
}

// Touch replays the bookkeeping of a same-group reinstall without
// rebuilding the canonical group key: the write counter advances and any
// warm flag clears, exactly the residue Install leaves on its same-key
// early return (which fires before the observer, so neither notifies).
// The incremental decision engine calls it when it can prove the selected
// next-hop set is unchanged; Stats and ExportState stay byte-identical to
// a full Install of the same hops.
func (t *Table) Touch(p netip.Prefix) {
	t.writes++
	delete(t.warmEntries, p)
}

// MarkWarm flags the prefix's current entry as "kept warm": the route was
// withdrawn from peers but forwarding state is retained
// (KeepFibWarmIfMnhViolated). A later Install or Remove clears the flag.
func (t *Table) MarkWarm(p netip.Prefix) {
	if _, ok := t.entries[p]; ok {
		t.warmEntries[p] = true
		t.notify(p, false, true)
	}
}

// IsWarm reports whether the prefix entry is retained only as warm state.
func (t *Table) IsWarm(p netip.Prefix) bool { return t.warmEntries[p] }

// Remove deletes the prefix's entry and releases its NHG reference.
func (t *Table) Remove(p netip.Prefix) {
	g := t.entries[p]
	if g == nil {
		return
	}
	delete(t.entries, p)
	delete(t.warmEntries, p)
	t.release(g)
	t.notify(p, true, false)
}

func (t *Table) release(g *group) {
	g.refs--
	if g.refs <= 0 {
		delete(t.groups, g.key)
	}
}

// EntryKey returns the canonical NHG key the prefix currently maps to, or
// "" when the prefix is not installed. Two snapshots of the same prefix
// compare equal exactly when the installed best-path set is unchanged.
func (t *Table) EntryKey(p netip.Prefix) string {
	if g := t.entries[p]; g != nil {
		return g.key
	}
	return ""
}

// Lookup returns the next-hop set for the prefix (exact match), or nil.
// Callers must not modify the returned slice.
func (t *Table) Lookup(p netip.Prefix) []NextHop {
	if g := t.entries[p]; g != nil {
		return g.hops
	}
	return nil
}

// LookupLPM returns the longest-prefix-match entry for the address, or nil.
func (t *Table) LookupLPM(addr netip.Addr) []NextHop {
	var best *group
	bestBits := -1
	for p, g := range t.entries {
		if p.Contains(addr) && p.Bits() > bestBits {
			best, bestBits = g, p.Bits()
		}
	}
	if best == nil {
		return nil
	}
	return best.hops
}

// Prefixes returns all installed prefixes, sorted, for deterministic
// inspection.
func (t *Table) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(t.entries))
	for p := range t.entries {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Entry is one row of a table snapshot: a prefix and its (normalized)
// next-hop set.
type Entry struct {
	Prefix netip.Prefix
	Hops   []NextHop
}

// Snapshot returns a copy of every installed entry, sorted by prefix. The
// chaos harness uses it to emulate a control-plane restart with a warm
// ASIC: forwarding state survives while the routing process reboots.
func (t *Table) Snapshot() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, p := range t.Prefixes() {
		g := t.entries[p]
		out = append(out, Entry{Prefix: p, Hops: append([]NextHop(nil), g.hops...)})
	}
	return out
}

// Stats snapshots the table's counters.
type Stats struct {
	Entries    int // prefixes installed
	Groups     int // live NHG objects
	PeakGroups int // high-water NHG occupancy
	Overflows  int // installs that pushed occupancy past the limit
	GroupChurn int // total NHG creations
	Writes     int // total prefix writes
	Limit      int
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats {
	return Stats{
		Entries:    len(t.entries),
		Groups:     len(t.groups),
		PeakGroups: t.peakGroups,
		Overflows:  t.overflows,
		GroupChurn: t.groupChurn,
		Writes:     t.writes,
		Limit:      t.limit,
	}
}

// ResetStats clears peak/churn/overflow counters (not the entries), so an
// experiment can measure a specific convergence window.
func (t *Table) ResetStats() {
	t.peakGroups = len(t.groups)
	t.overflows = 0
	t.groupChurn = 0
	t.writes = 0
}

// TableState is the complete serializable state of a Table: entries with
// their (normalized) next-hop sets, warm flags, and the cumulative
// counters. NewFromState reconstructs an equivalent table without the
// write/churn side effects Install would record.
type TableState struct {
	Limit   int
	Entries []Entry        // sorted by prefix
	Warm    []netip.Prefix // sorted; subset of Entries' prefixes

	PeakGroups int
	Overflows  int
	GroupChurn int
	Writes     int
}

// ExportState captures the table for checkpointing. The result shares no
// memory with the table.
func (t *Table) ExportState() TableState {
	st := TableState{
		Limit:      t.limit,
		Entries:    t.Snapshot(),
		PeakGroups: t.peakGroups,
		Overflows:  t.overflows,
		GroupChurn: t.groupChurn,
		Writes:     t.writes,
	}
	for _, p := range t.Prefixes() {
		if t.warmEntries[p] {
			st.Warm = append(st.Warm, p)
		}
	}
	return st
}

// NewFromState rebuilds a table from a checkpoint: NHG objects are
// re-shared by canonical key with correct reference counts, warm flags are
// re-applied, and the counters are restored verbatim (reconstruction
// itself counts as zero writes). The observer starts nil; the owner
// re-attaches telemetry after restore.
func NewFromState(st TableState) *Table {
	t := New(st.Limit)
	for _, e := range st.Entries {
		key := groupKey(e.Hops)
		g := t.groups[key]
		if g == nil {
			g = &group{key: key, hops: normalizeHops(e.Hops)}
			t.groups[key] = g
		}
		g.refs++
		t.entries[e.Prefix] = g
	}
	for _, p := range st.Warm {
		if _, ok := t.entries[p]; ok {
			t.warmEntries[p] = true
		}
	}
	t.peakGroups = st.PeakGroups
	t.overflows = st.Overflows
	t.groupChurn = st.GroupChurn
	t.writes = st.Writes
	return t
}
