package fib

import (
	"fmt"
	"net/netip"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestInstallLookup(t *testing.T) {
	tb := New(0)
	hops := []NextHop{{ID: "b", Weight: 1}, {ID: "a", Weight: 1}}
	tb.Install(pfx("10.0.0.0/8"), hops)
	got := tb.Lookup(pfx("10.0.0.0/8"))
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("Lookup = %v, want sorted [a b]", got)
	}
	if tb.Lookup(pfx("11.0.0.0/8")) != nil {
		t.Fatal("lookup of missing prefix returned entry")
	}
	st := tb.Stats()
	if st.Entries != 1 || st.Groups != 1 || st.Limit != DefaultGroupLimit {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestGroupSharing(t *testing.T) {
	tb := New(0)
	// Same logical distribution with scaled weights must share one group.
	tb.Install(pfx("10.1.0.0/16"), []NextHop{{"a", 2}, {"b", 2}})
	tb.Install(pfx("10.2.0.0/16"), []NextHop{{"a", 1}, {"b", 1}})
	tb.Install(pfx("10.3.0.0/16"), []NextHop{{"b", 3}, {"a", 3}}) // order-insensitive
	if st := tb.Stats(); st.Groups != 1 {
		t.Fatalf("Groups = %d, want 1 (shared)", st.Groups)
	}
	// Different ratio: new group.
	tb.Install(pfx("10.4.0.0/16"), []NextHop{{"a", 2}, {"b", 1}})
	if st := tb.Stats(); st.Groups != 2 {
		t.Fatalf("Groups = %d, want 2", st.Groups)
	}
}

func TestGroupRefcountRelease(t *testing.T) {
	tb := New(0)
	tb.Install(pfx("10.1.0.0/16"), []NextHop{{"a", 1}})
	tb.Install(pfx("10.2.0.0/16"), []NextHop{{"a", 1}})
	tb.Remove(pfx("10.1.0.0/16"))
	if st := tb.Stats(); st.Groups != 1 || st.Entries != 1 {
		t.Fatalf("Stats after one remove = %+v", st)
	}
	tb.Remove(pfx("10.2.0.0/16"))
	if st := tb.Stats(); st.Groups != 0 || st.Entries != 0 {
		t.Fatalf("Stats after both removed = %+v", st)
	}
	tb.Remove(pfx("10.2.0.0/16")) // double remove is a no-op
}

func TestReinstallSameGroupIsNoop(t *testing.T) {
	tb := New(0)
	tb.Install(pfx("10.0.0.0/8"), []NextHop{{"a", 1}})
	churn := tb.Stats().GroupChurn
	tb.Install(pfx("10.0.0.0/8"), []NextHop{{"a", 5}}) // same normalized group
	if got := tb.Stats().GroupChurn; got != churn {
		t.Fatalf("churn grew on no-op rewrite: %d -> %d", churn, got)
	}
}

func TestInstallEmptyRemoves(t *testing.T) {
	tb := New(0)
	tb.Install(pfx("10.0.0.0/8"), []NextHop{{"a", 1}})
	tb.Install(pfx("10.0.0.0/8"), nil)
	if tb.Lookup(pfx("10.0.0.0/8")) != nil {
		t.Fatal("empty install did not remove entry")
	}
}

func TestPeakAndOverflow(t *testing.T) {
	tb := New(2)
	for i := 0; i < 4; i++ {
		tb.Install(pfx(fmt.Sprintf("10.%d.0.0/16", i)), []NextHop{{fmt.Sprintf("nh%d", i), 1}})
	}
	st := tb.Stats()
	if st.PeakGroups != 4 {
		t.Errorf("PeakGroups = %d, want 4", st.PeakGroups)
	}
	if st.Overflows != 2 {
		t.Errorf("Overflows = %d, want 2 (groups 3 and 4 exceed limit 2)", st.Overflows)
	}
	// Release groups; peak must not decrease.
	for i := 0; i < 4; i++ {
		tb.Remove(pfx(fmt.Sprintf("10.%d.0.0/16", i)))
	}
	if got := tb.Stats().PeakGroups; got != 4 {
		t.Errorf("PeakGroups after removal = %d, want 4", got)
	}
	tb.ResetStats()
	if got := tb.Stats().PeakGroups; got != 0 {
		t.Errorf("PeakGroups after reset = %d, want 0 (no live groups)", got)
	}
}

func TestWarmEntries(t *testing.T) {
	tb := New(0)
	p := pfx("0.0.0.0/0")
	tb.MarkWarm(p) // no entry: no-op
	if tb.IsWarm(p) {
		t.Fatal("warm without entry")
	}
	tb.Install(p, []NextHop{{"a", 1}})
	tb.MarkWarm(p)
	if !tb.IsWarm(p) {
		t.Fatal("MarkWarm did not stick")
	}
	if tb.Lookup(p) == nil {
		t.Fatal("warm entry must still forward")
	}
	tb.Install(p, []NextHop{{"b", 1}})
	if tb.IsWarm(p) {
		t.Fatal("reinstall must clear warm flag")
	}
	tb.MarkWarm(p)
	tb.Remove(p)
	if tb.IsWarm(p) {
		t.Fatal("remove must clear warm flag")
	}
}

func TestLookupLPM(t *testing.T) {
	tb := New(0)
	tb.Install(pfx("0.0.0.0/0"), []NextHop{{"default", 1}})
	tb.Install(pfx("10.0.0.0/8"), []NextHop{{"agg", 1}})
	tb.Install(pfx("10.1.0.0/16"), []NextHop{{"specific", 1}})
	tests := []struct {
		addr string
		want string
	}{
		{"10.1.2.3", "specific"},
		{"10.2.0.1", "agg"},
		{"192.168.0.1", "default"},
	}
	for _, tt := range tests {
		got := tb.LookupLPM(netip.MustParseAddr(tt.addr))
		if len(got) != 1 || got[0].ID != tt.want {
			t.Errorf("LookupLPM(%s) = %v, want %s", tt.addr, got, tt.want)
		}
	}
	empty := New(0)
	if empty.LookupLPM(netip.MustParseAddr("1.1.1.1")) != nil {
		t.Error("LPM on empty table returned entry")
	}
}

func TestPrefixesSorted(t *testing.T) {
	tb := New(0)
	tb.Install(pfx("10.2.0.0/16"), []NextHop{{"a", 1}})
	tb.Install(pfx("10.1.0.0/16"), []NextHop{{"a", 1}})
	ps := tb.Prefixes()
	if len(ps) != 2 || ps[0].String() > ps[1].String() {
		t.Fatalf("Prefixes = %v", ps)
	}
}

func TestGroupKeyProperties(t *testing.T) {
	// Property: key is invariant under permutation and weight scaling.
	f := func(w1, w2 uint8, scale uint8) bool {
		a := int(w1%10) + 1
		b := int(w2%10) + 1
		s := int(scale%5) + 1
		k1 := groupKey([]NextHop{{"x", a}, {"y", b}})
		k2 := groupKey([]NextHop{{"y", b * s}, {"x", a * s}})
		return k1 == k2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Distinct ratios produce distinct keys.
	if groupKey([]NextHop{{"x", 1}, {"y", 2}}) == groupKey([]NextHop{{"x", 2}, {"y", 1}}) {
		t.Error("distinct ratios share a key")
	}
	// Zero weights do not crash key computation.
	_ = groupKey([]NextHop{{"x", 0}, {"y", 0}})
}

func TestChurnCountsDistinctGroups(t *testing.T) {
	tb := New(0)
	p := pfx("10.0.0.0/8")
	// Flip between two distinct groups 10 times: churn counts each creation.
	for i := 0; i < 10; i++ {
		tb.Install(p, []NextHop{{"a", 1}})
		tb.Install(p, []NextHop{{"b", 1}})
	}
	st := tb.Stats()
	if st.GroupChurn != 20 {
		t.Errorf("GroupChurn = %d, want 20", st.GroupChurn)
	}
	if st.Writes != 20 {
		t.Errorf("Writes = %d, want 20", st.Writes)
	}
}
