package metrics

import (
	"runtime"
	"sync"
	"time"
)

// TaskMeter measures the CPU and memory footprint attributable to one
// logical "task" (a controller micro-service replica in the paper's Twine
// deployment). Because all tasks share one Go process in the emulation, CPU
// is accounted cooperatively: task code wraps its work in Start/Stop
// sections, and utilization is busy-time divided by wall-time, expressed in
// single-core-equivalent percent exactly as Figure 11(a) reports it.
type TaskMeter struct {
	mu        sync.Mutex
	name      string
	busy      time.Duration
	started   time.Time // zero when not in a section
	createdAt time.Time

	// heapBytes is a caller-attributed live-bytes figure; services report
	// the size of the state they hold (see nsdb.Store.SizeBytes).
	heapBytes int64
}

// NewTaskMeter returns a meter for the named task, with the wall clock
// started now.
func NewTaskMeter(name string) *TaskMeter {
	return &TaskMeter{name: name, createdAt: time.Now()}
}

// Name returns the task name the meter was created with.
func (m *TaskMeter) Name() string { return m.name }

// Section runs fn with busy-time accounting.
func (m *TaskMeter) Section(fn func()) {
	start := time.Now()
	fn()
	m.mu.Lock()
	m.busy += time.Since(start)
	m.mu.Unlock()
}

// AddBusy directly credits busy CPU time to the task.
func (m *TaskMeter) AddBusy(d time.Duration) {
	m.mu.Lock()
	m.busy += d
	m.mu.Unlock()
}

// SetHeapBytes records the task's attributed live memory.
func (m *TaskMeter) SetHeapBytes(n int64) {
	m.mu.Lock()
	m.heapBytes = n
	m.mu.Unlock()
}

// CPUPercent returns single-core-equivalent utilization in percent since
// the meter was created.
func (m *TaskMeter) CPUPercent() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	wall := time.Since(m.createdAt)
	if wall <= 0 {
		return 0
	}
	return float64(m.busy) / float64(wall) * 100
}

// HeapBytes returns the task's attributed live memory in bytes.
func (m *TaskMeter) HeapBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.heapBytes
}

// ProcessHeapBytes returns the Go process's current live heap, used as an
// upper bound sanity check in the Figure 11 experiment.
func ProcessHeapBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}
