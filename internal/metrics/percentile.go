// Package metrics provides the small statistical toolkit used by the
// experiment harnesses: percentile estimation, empirical CDFs, histograms,
// and lightweight process resource sampling.
//
// Everything here is allocation-conscious but favors clarity: the experiment
// harnesses call these functions once per run, never on a hot path.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates float64 observations and answers order-statistics
// queries. The zero value is ready to use.
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns a Sample pre-sized for n observations.
func NewSample(n int) *Sample {
	return &Sample{values: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddDuration records a duration observation in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Len reports the number of observations recorded.
func (s *Sample) Len() int { return len(s.values) }

// Values returns the recorded observations in sorted order. The returned
// slice is owned by the Sample and must not be modified.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.values
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns NaN for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.sort()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Max returns the largest observation, or NaN for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Min returns the smallest observation, or NaN for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.values[0]
}

// Summary holds the headline order statistics of a sample.
type Summary struct {
	Count              int
	Mean               float64
	Min, Max           float64
	P50, P75, P95, P99 float64
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		Count: s.Len(),
		Mean:  s.Mean(),
		Min:   s.Min(),
		Max:   s.Max(),
		P50:   s.Percentile(50),
		P75:   s.Percentile(75),
		P95:   s.Percentile(95),
		P99:   s.Percentile(99),
	}
}

// String renders the summary on one line, suitable for experiment output.
func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f p50=%.3f p75=%.3f p95=%.3f p99=%.3f max=%.3f",
		sm.Count, sm.Mean, sm.Min, sm.P50, sm.P75, sm.P95, sm.P99, sm.Max)
}
