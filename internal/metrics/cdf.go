package metrics

import (
	"fmt"
	"strings"
)

// CDFPoint is one (value, cumulative-fraction) point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // in (0, 1]
}

// CDF computes the empirical CDF of the sample, downsampled to at most
// maxPoints evenly spaced points (by rank). The last point always has
// Fraction == 1. It returns nil for an empty sample.
func (s *Sample) CDF(maxPoints int) []CDFPoint {
	n := s.Len()
	if n == 0 {
		return nil
	}
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	vals := s.Values()
	points := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		// Pick the rank at the end of the i-th bucket so the final point is
		// the max observation at fraction 1.
		rank := (i+1)*n/maxPoints - 1
		points = append(points, CDFPoint{
			Value:    vals[rank],
			Fraction: float64(rank+1) / float64(n),
		})
	}
	return points
}

// FormatCDF renders CDF points as aligned "value fraction" rows, one per
// line, with the given label header. The output is the series the paper's
// CDF figures plot.
func FormatCDF(label string, points []CDFPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# CDF: %s (%d points)\n", label, len(points))
	fmt.Fprintf(&b, "%-14s %s\n", "value", "fraction")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14.4f %.4f\n", p.Value, p.Fraction)
	}
	return b.String()
}

// AsciiCDF renders a coarse terminal plot of the CDF: rows are fraction
// deciles, columns scale to the value range. Useful for eyeballing shapes
// in example programs without a plotting stack.
func AsciiCDF(label string, s *Sample, width int) string {
	if s.Len() == 0 {
		return fmt.Sprintf("# %s: empty\n", label)
	}
	if width < 10 {
		width = 10
	}
	lo, hi := s.Min(), s.Max()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s  [min=%.3f max=%.3f]\n", label, lo, hi)
	for f := 10; f <= 100; f += 10 {
		v := s.Percentile(float64(f))
		bar := int((v - lo) / span * float64(width))
		fmt.Fprintf(&b, "%3d%% |%s%s| %.3f\n", f,
			strings.Repeat("#", bar), strings.Repeat(" ", width-bar), v)
	}
	return b.String()
}
