package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Percentile(50)) {
		t.Fatalf("empty sample percentile = %v, want NaN", s.Percentile(50))
	}
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("empty sample stats should be NaN")
	}
}

func TestPercentileSingle(t *testing.T) {
	var s Sample
	s.Add(42)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Errorf("Percentile(%v) = %v, want 42", p, got)
		}
	}
}

func TestPercentileKnown(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p, want float64
	}{
		{0, 1},
		{100, 100},
		{50, 50.5},
		{25, 25.75},
		{99, 99.01},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileClamps(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	s.Add(2)
	if got := s.Percentile(-10); got != 1 {
		t.Errorf("Percentile(-10) = %v, want 1", got)
	}
	if got := s.Percentile(200); got != 3 {
		t.Errorf("Percentile(200) = %v, want 3", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	// Property: for any sample, percentile is non-decreasing in p.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s.Add(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	// Property: percentile always lies within [min, max].
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			s.Add(v)
		}
		for p := 0.0; p <= 100; p += 13 {
			v := s.Percentile(p)
			if v < s.Min() || v > s.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Percentile(50); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("AddDuration stored %v ms, want 1.5", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 1, 7, 2} {
		s.Add(v)
	}
	if got := s.Mean(); got != 3.5 {
		t.Errorf("Mean = %v, want 3.5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
}

func TestSummary(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	sm := s.Summarize()
	if sm.Count != 1000 {
		t.Errorf("Count = %d, want 1000", sm.Count)
	}
	if sm.P50 < 490 || sm.P50 > 510 {
		t.Errorf("P50 = %v, want ~500", sm.P50)
	}
	if !strings.Contains(sm.String(), "n=1000") {
		t.Errorf("Summary.String missing count: %q", sm.String())
	}
}

func TestCDFProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Sample
	for i := 0; i < 500; i++ {
		s.Add(rng.NormFloat64())
	}
	points := s.CDF(50)
	if len(points) != 50 {
		t.Fatalf("CDF returned %d points, want 50", len(points))
	}
	// Fractions strictly increase and end at 1; values are non-decreasing.
	for i := 1; i < len(points); i++ {
		if points[i].Fraction <= points[i-1].Fraction {
			t.Fatalf("fractions not increasing at %d: %v <= %v", i, points[i].Fraction, points[i-1].Fraction)
		}
		if points[i].Value < points[i-1].Value {
			t.Fatalf("values decreasing at %d", i)
		}
	}
	if points[len(points)-1].Fraction != 1 {
		t.Fatalf("last fraction = %v, want 1", points[len(points)-1].Fraction)
	}
	if points[len(points)-1].Value != s.Max() {
		t.Fatalf("last value = %v, want max %v", points[len(points)-1].Value, s.Max())
	}
}

func TestCDFEmptyAndSmall(t *testing.T) {
	var s Sample
	if got := s.CDF(10); got != nil {
		t.Fatalf("empty CDF = %v, want nil", got)
	}
	s.Add(5)
	points := s.CDF(10)
	if len(points) != 1 || points[0].Value != 5 || points[0].Fraction != 1 {
		t.Fatalf("single-point CDF = %+v", points)
	}
}

func TestCDFDownsampleCoversAllRanks(t *testing.T) {
	var s Sample
	vals := []float64{9, 3, 7, 1, 5}
	for _, v := range vals {
		s.Add(v)
	}
	points := s.CDF(0) // maxPoints <= 0 means all points
	if len(points) != len(vals) {
		t.Fatalf("got %d points, want %d", len(points), len(vals))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for i, p := range points {
		if p.Value != sorted[i] {
			t.Errorf("point %d value = %v, want %v", i, p.Value, sorted[i])
		}
	}
}

func TestFormatCDF(t *testing.T) {
	out := FormatCDF("x", []CDFPoint{{Value: 1, Fraction: 0.5}, {Value: 2, Fraction: 1}})
	if !strings.Contains(out, "# CDF: x (2 points)") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "1.0000") || !strings.Contains(out, "0.5000") {
		t.Errorf("missing rows: %q", out)
	}
}

func TestAsciiCDF(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	out := AsciiCDF("lat", &s, 20)
	if !strings.Contains(out, "100%") || !strings.Contains(out, "lat") {
		t.Errorf("unexpected ascii cdf: %q", out)
	}
	if got := AsciiCDF("empty", &Sample{}, 20); !strings.Contains(got, "empty") {
		t.Errorf("empty ascii cdf: %q", got)
	}
}

func TestTaskMeter(t *testing.T) {
	m := NewTaskMeter("nsdb-0")
	if m.Name() != "nsdb-0" {
		t.Fatalf("Name = %q", m.Name())
	}
	m.Section(func() { time.Sleep(5 * time.Millisecond) })
	m.AddBusy(10 * time.Millisecond)
	if m.CPUPercent() <= 0 {
		t.Errorf("CPUPercent = %v, want > 0", m.CPUPercent())
	}
	m.SetHeapBytes(1 << 20)
	if m.HeapBytes() != 1<<20 {
		t.Errorf("HeapBytes = %d", m.HeapBytes())
	}
	if ProcessHeapBytes() <= 0 {
		t.Error("ProcessHeapBytes <= 0")
	}
}

func TestTaskMeterConcurrent(t *testing.T) {
	m := NewTaskMeter("agent-0")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				m.AddBusy(time.Microsecond)
				m.SetHeapBytes(int64(j))
				_ = m.CPUPercent()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
